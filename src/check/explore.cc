#include "src/check/explore.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/strings.h"
#include "src/check/frontends.h"
#include "src/check/fuzz.h"
#include "src/core/pool.h"
#include "src/core/rebalancer.h"
#include "src/hv/xenbus.h"
#include "src/net/tcp.h"
#include "src/workloads/netbench.h"

namespace kite {

namespace {

// Fault sites a schedule may open during the fault window. Every listed
// site is recoverable once ClearRates ends the window: grant/xenstore
// failures are retried, disk errors surface as failed I/O callbacks, and
// wire loss is absorbed by timeouts. kEventNotify is deliberately absent:
// the ring notification-suppression protocol means the one kick that
// crosses req_event is irreplaceable — swallowing it parks the ring with
// no later push ever re-notifying. Real event channels are hypercalls and
// lossless; that site exists for targeted wedge tests, not for a window
// the system is expected to survive unaided.
constexpr FaultSite kWindowSites[] = {
    FaultSite::kGrantMap, FaultSite::kXenstoreRead, FaultSite::kDiskIo,
    FaultSite::kNicLoss,  FaultSite::kNicCorrupt,
};

}  // namespace

ExploreReport RunExploreSeed(const ExploreOptions& opts) {
  ExploreReport report;
  report.seed = opts.seed;

  // Scenario choices (which sites open, which domains restart) come from a
  // generator distinct from the shuffle/fault/fuzz streams so adding a
  // choice never perturbs the others.
  Rng plan(opts.seed * 0x9e3779b97f4a7c15ULL + 1);

  KiteSystem::Params params;
  params.fault_seed = opts.seed ^ 0xfa0170ULL;
  params.health = opts.health;
  // Attribution is accounting-only (DESIGN.md §16); running every explore
  // seed with it on keeps the ledger paths under shuffle+fault coverage.
  params.cpu_attribution = true;
  KiteSystem sys(params);
  sys.EnableScheduleShuffle(opts.seed);
  // Liveness reports carry the dispatch-profile top sites: when a seed hangs,
  // "which callback ate the window" is the first triage question.
  sys.executor().EnableDispatchProfiler();

  auto phase = [&](const char* name) {
    report.phase = name;
    if (opts.verbose) {
      std::fprintf(stderr, "[seed %llu] phase %s (t=%.6fs)\n",
                   static_cast<unsigned long long>(opts.seed), name,
                   sys.Now().seconds());
    }
  };
  auto live_fail = [&](std::string what) {
    report.ok = false;
    // The full diagnostic bundle: health verdicts name the wedged backend,
    // flight-recorder tails show its last moves, pending events say where
    // the simulation is stuck, and the metrics say how far each path got.
    std::ostringstream diag;
    sys.DumpDiagnostics(diag);
    report.detail = std::move(what) + "\n" + diag.str();
    return report;
  };

  phase("build");
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* g1 = sys.CreateGuest("explore-guest1");
  sys.AttachVif(g1, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(g1, stordom);
  GuestVm* g2 = sys.CreateGuest("explore-guest2");
  sys.AttachVif(g2, netdom, Ipv4Addr::FromOctets(10, 0, 0, 11));
  GuestVm* fuzz_net_guest = sys.CreateGuest("fuzz-net-guest");
  GuestVm* fuzz_blk_guest = sys.CreateGuest("fuzz-blk-guest");

  phase("connect");
  if (!sys.WaitConnected(g1) || !sys.WaitConnected(g2)) {
    return live_fail("real frontends never connected");
  }
  auto raw_net = std::make_unique<RawNetFrontend>(&sys, netdom, fuzz_net_guest);
  auto raw_blk = std::make_unique<RawBlkFrontend>(&sys, stordom, fuzz_blk_guest);
  if (!raw_net->Connect()) {
    return live_fail("raw net frontend never paired");
  }
  if (!raw_blk->Connect()) {
    return live_fail("raw blk frontend never paired");
  }

  phase("traffic");
  NuttcpConfig nut_cfg;
  nut_cfg.offered_gbps = 3.0;
  nut_cfg.datagram_bytes = 4096;
  nut_cfg.duration = Millis(50);
  NuttcpUdp nut(sys.client()->stack(), g1->stack(), g1->ip(), nut_cfg);
  nut.Run([](const NuttcpResult&) {});
  int io_done = 0;
  Buffer wdata(8192, 0xab);
  auto count_io = [&io_done](bool) { ++io_done; };
  g1->blkfront()->Write(0, wdata, count_io);
  g1->blkfront()->Read(4096, 8192, nullptr, count_io);
  g1->blkfront()->Flush(count_io);
  if (!sys.WaitUntil([&] { return nut.finished() && io_done == 3; }, Seconds(10))) {
    return live_fail("traffic phase never completed");
  }

  phase("fuzz");
  ProtocolFuzzer fuzz(opts.seed ^ 0xf022ULL);
  const int net_burst = 24 + static_cast<int>(plan.NextBelow(40));
  for (int i = 0; i < net_burst; ++i) {
    raw_net->SendTx(fuzz.MutateNetTx(raw_net->ValidTx(static_cast<uint16_t>(i))));
    if (i % 8 == 7) {
      sys.RunFor(Millis(2));
      raw_net->DrainTxResponses();
    }
  }
  const int blk_burst = 12 + static_cast<int>(plan.NextBelow(20));
  for (int i = 0; i < blk_burst; ++i) {
    const BlkRequest req = fuzz.MutateBlk(raw_blk->ValidRead(static_cast<uint64_t>(i)),
                                          raw_blk->capacity_sectors());
    if (!raw_blk->SendBlk(req)) {
      // Ring full: let the backend and disk drain, then retry once.
      sys.RunFor(Millis(50));
      raw_blk->DrainResponses();
      raw_blk->SendBlk(req);
    }
    if (i % 4 == 3) {
      sys.RunFor(Millis(10));
      raw_blk->DrainResponses();
    }
  }
  sys.RunFor(Millis(200));
  raw_net->DrainTxResponses();
  raw_blk->DrainResponses();
  // Liveness probe: after the malformed burst both backends must still
  // answer a well-formed request.
  raw_net->SendTx(raw_net->ValidTx(999));
  raw_blk->SendBlk(raw_blk->ValidRead(999));
  sys.RunFor(Millis(200));
  if (raw_net->DrainTxResponses().empty()) {
    return live_fail("netback stopped responding after fuzz burst");
  }
  if (raw_blk->DrainResponses().empty()) {
    return live_fail("blkback stopped responding after fuzz burst");
  }

  phase("loss-window");
  // Honest TCP under real wire loss plus an on-path junk burst. The
  // connection is established before loss opens (ARP is not retried), then
  // the bulk transfer must ride retransmission/recovery through 1-5% loss
  // while mutated segments spray both the live flow and a closed port.
  uint64_t tcp_rx_bytes = 0;
  sys.client()->stack()->ListenTcp(8091, [&](TcpConn* conn) {
    conn->SetDataCallback(
        [&](std::span<const uint8_t> d) { tcp_rx_bytes += d.size(); });
  });
  bool tcp_connected = false;
  TcpConn* tconn = g1->stack()->ConnectTcp(sys.client_ip(), 8091,
                                           [&](TcpConn*) { tcp_connected = true; });
  if (!sys.WaitUntil([&] { return tcp_connected; }, Seconds(10))) {
    return live_fail("loss-window TCP connect never completed");
  }
  const size_t xfer_bytes = (64 + plan.NextBelow(64)) * 1024;
  sys.faults().set_rate(FaultSite::kNicLoss, 0.01 + 0.04 * plan.NextDouble());
  tconn->Send(Buffer(xfer_bytes, 0x7e));
  const int tcp_burst = 16 + static_cast<int>(plan.NextBelow(17));
  for (int i = 0; i < tcp_burst; ++i) {
    TcpSegment tmpl;
    tmpl.src_port = tconn->local_port();
    tmpl.dst_port = (i % 4 == 3) ? 9991 : 8091;  // 9991: closed, RST path.
    tmpl.seq = static_cast<uint32_t>(fuzz.rng().NextU64());
    tmpl.ack = static_cast<uint32_t>(fuzz.rng().NextU64());
    tmpl.ack_flag = true;
    tmpl.window = kTcpWindowBytes;
    TcpSegment mut = fuzz.MutateTcp(std::move(tmpl));
    // Mutated RSTs go to the closed port only: a random seq lands inside
    // the live flow's receive window on ~1/16k injections, and a seed that
    // legitimately resets the transfer would be indistinguishable from a
    // liveness bug. Out-of-window RST rejection is pinned by unit tests.
    if (mut.rst) {
      mut.dst_port = 9991;
    }
    Ipv4Packet pkt;
    pkt.src = g1->ip();
    pkt.dst = sys.client_ip();
    pkt.proto = kIpProtoTcp;
    pkt.l4 = std::move(mut);
    g1->stack()->SendIp(std::move(pkt));
    if (i % 8 == 7) {
      sys.RunFor(Millis(1));
    }
  }
  sys.RunFor(Millis(100));
  sys.faults().ClearRates();
  if (!sys.WaitUntil([&] { return tcp_rx_bytes >= xfer_bytes; }, Seconds(60))) {
    return live_fail(StrFormat("loss-window transfer stalled at %llu/%llu bytes",
                               static_cast<unsigned long long>(tcp_rx_bytes),
                               static_cast<unsigned long long>(xfer_bytes)));
  }
  if (tcp_rx_bytes != xfer_bytes) {
    return live_fail(StrFormat("loss-window transfer over-delivered: %llu/%llu",
                               static_cast<unsigned long long>(tcp_rx_bytes),
                               static_cast<unsigned long long>(xfer_bytes)));
  }

  phase("fault-window");
  const int nsites = 1 + static_cast<int>(plan.NextBelow(3));
  for (int i = 0; i < nsites; ++i) {
    const FaultSite site = kWindowSites[plan.NextBelow(std::size(kWindowSites))];
    sys.faults().set_rate(site, 0.02 + 0.18 * plan.NextDouble());
  }
  // Traffic under fire. Completions are not awaited inside the window —
  // disk errors and wire loss may delay or fail them; the recovery phase
  // below waits for the drain once the rates are cleared.
  int window_io_done = 0;
  const int window_writes = 4 + static_cast<int>(plan.NextBelow(6));
  for (int i = 0; i < window_writes; ++i) {
    g1->blkfront()->Write(static_cast<int64_t>(i) * 8192, wdata,
                          [&window_io_done](bool) { ++window_io_done; });
  }
  g1->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  g2->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  for (int i = 0; i < 8; ++i) {
    raw_net->SendTx(fuzz.MutateNetTx(raw_net->ValidTx(static_cast<uint16_t>(2000 + i))));
  }
  raw_blk->SendBlk(fuzz.MutateBlk(raw_blk->ValidRead(2000), raw_blk->capacity_sectors()));
  sys.RunFor(Millis(300));

  phase("recover");
  sys.faults().ClearRates();
  int recover_done = 0;
  g1->blkfront()->Read(0, 4096, nullptr, [&recover_done](bool) { ++recover_done; });
  raw_net->SendTx(raw_net->ValidTx(3000));
  raw_blk->SendBlk(raw_blk->ValidRead(3000));
  if (!sys.WaitUntil(
          [&] { return recover_done == 1 && window_io_done == window_writes; },
          Seconds(30))) {
    return live_fail(StrFormat("fault-window I/O never drained (%d/%d writes, "
                               "recovery read %d/1)",
                               window_io_done, window_writes, recover_done));
  }
  if (!sys.WaitConnected(g1, Seconds(30)) || !sys.WaitConnected(g2, Seconds(30))) {
    return live_fail("frontends not reconnected after fault window");
  }
  sys.RunFor(Millis(100));
  raw_net->DrainTxResponses();
  raw_blk->DrainResponses();

  phase("guest-death");
  // The fuzz guests die violently — their rings may still hold junk the
  // backend never consumed; reaping must cope. g2 dies on some seeds.
  raw_net.reset();
  raw_blk.reset();
  sys.DestroyGuest(fuzz_net_guest);
  sys.DestroyGuest(fuzz_blk_guest);
  if (plan.NextBool(0.5)) {
    sys.DestroyGuest(g2);
    g2 = nullptr;
  }
  sys.RunFor(Millis(50));  // Backends reap the orphaned instances.

  phase("restart");
  const uint64_t restart_choice = plan.NextBelow(3);
  if (restart_choice == 0 || restart_choice == 2) {
    netdom = sys.RestartNetworkDomain(netdom);
  }
  if (restart_choice == 1 || restart_choice == 2) {
    stordom = sys.RestartStorageDomain(stordom);
  }
  if (!sys.WaitConnected(g1, Seconds(30)) ||
      (g2 != nullptr && !sys.WaitConnected(g2, Seconds(30)))) {
    return live_fail("frontends never reconnected after driver-domain restart");
  }
  // Post-restart proof: storage answers and the data path carries a ping.
  int post_read = 0;
  g1->blkfront()->Read(0, 4096, nullptr, [&post_read](bool) { ++post_read; });
  if (!sys.WaitUntil([&] { return post_read == 1; }, Seconds(30))) {
    return live_fail("post-restart read never completed");
  }
  bool pinged = false;
  for (int attempt = 0; attempt < 5 && !pinged; ++attempt) {
    bool done = false;
    g1->stack()->Ping(sys.client_ip(), 56, [&](bool ok, SimDuration) {
      done = true;
      pinged = pinged || ok;
    });
    sys.RunFor(Seconds(2));
    (void)done;
  }
  if (!pinged) {
    return live_fail("post-restart ping never succeeded");
  }

  phase("quiesce");
  sys.RunUntilIdle();

  phase("check");
  InvariantChecker checker(&sys);
  report.violations = checker.Check();
  report.ok = report.violations.empty();
  return report;
}

ExploreReport RunFailoverSeed(const ExploreOptions& opts) {
  ExploreReport report;
  report.seed = opts.seed;
  report.failover = true;

  // Scenario choices (pool sizes, victim, drain-vs-evacuate) come from a
  // generator distinct from the shuffle/fault streams, as in RunExploreSeed.
  Rng plan(opts.seed * 0x9e3779b97f4a7c15ULL + 2);

  // Evacuation seeds set the stalled threshold inside the run; drain seeds
  // push it out of reach so the wedge stays degraded and the Rebalancer must
  // take the graceful path.
  const bool evacuate = plan.NextBool(0.5);

  KiteSystem::Params params;
  params.fault_seed = opts.seed ^ 0xfa170e4ULL;
  params.disk_store_data = true;
  // Tight watchdog (the stall-demo scale) so the wedge is flagged in
  // simulated milliseconds; the sweep's job is the failover machinery, not
  // threshold calibration.
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = evacuate ? Millis(20) : Seconds(100);
  KiteSystem sys(params);
  sys.EnableScheduleShuffle(opts.seed);
  sys.executor().EnableDispatchProfiler();

  auto phase = [&](const char* name) {
    report.phase = name;
    if (opts.verbose) {
      std::fprintf(stderr, "[failover seed %llu] phase %s (t=%.6fs)\n",
                   static_cast<unsigned long long>(opts.seed), name,
                   sys.Now().seconds());
    }
  };
  auto live_fail = [&](std::string what) {
    report.ok = false;
    std::ostringstream diag;
    sys.DumpDiagnostics(diag);
    report.detail = std::move(what) + "\n" + diag.str();
    return report;
  };

  phase("build");
  const int net_shards = 2 + static_cast<int>(plan.NextBelow(3));  // 2..4
  const int num_guests = 6 + static_cast<int>(plan.NextBelow(11));  // 6..16
  DomainPool pool(&sys);
  for (int i = 0; i < net_shards; ++i) {
    pool.AddNetworkShard(sys.CreateNetworkDomain());
  }
  pool.AddStorageShard(sys.CreateStorageDomain());
  pool.AddStorageShard(sys.CreateStorageDomain());
  RebalancerParams rp;
  // In evacuation seeds the hysteresis outlasts the stall threshold, so the
  // stalled path always wins the race against the degraded drain.
  rp.degraded_hysteresis = evacuate ? Seconds(1) : Millis(10);
  rp.max_concurrent_migrations = 1 + static_cast<int>(plan.NextBelow(4));
  Rebalancer reb(&sys, &pool, rp);

  std::vector<GuestVm*> guests;
  for (int i = 0; i < num_guests; ++i) {
    GuestVm* g = sys.CreateGuest(StrFormat("failover-vm%02d", i));
    if (pool.AttachVif(g, Ipv4Addr::FromOctets(10, 0, 0, static_cast<uint8_t>(10 + i))) ==
            nullptr ||
        pool.AttachVbd(g) == nullptr) {
      return live_fail("pool had no open shard at attach time");
    }
    guests.push_back(g);
  }

  phase("connect");
  for (GuestVm* g : guests) {
    if (!sys.WaitConnected(g)) {
      return live_fail("guest frontends never connected");
    }
  }

  phase("traffic");
  auto server = sys.client()->stack()->OpenUdp();
  server->Bind(9000);
  uint64_t client_rx = 0;
  server->SetRecvCallback([&](Ipv4Addr, uint16_t, const Buffer&) { ++client_rx; });
  std::vector<std::unique_ptr<UdpSocket>> socks;
  for (GuestVm* g : guests) {
    socks.push_back(g->stack()->OpenUdp());
  }
  constexpr int kPacketsPerPhase = 12;
  uint64_t sent = 0;
  auto blast = [&] {
    for (size_t gi = 0; gi < guests.size(); ++gi) {
      UdpSocket* sock = socks[gi].get();
      for (int i = 0; i < kPacketsPerPhase; ++i) {
        sys.executor().PostAfter(Micros(100) * i + Micros(static_cast<int64_t>(gi)),
                                 KITE_POST_SITE("explore/udp-blast"), [&sys, sock] {
                                   sock->SendTo(sys.client_ip(), 9000, Buffer(256, 0x5c));
                                 });
        ++sent;
      }
    }
    sys.RunFor(Millis(10));
  };
  blast();
  // One acked write per guest on a disjoint slab of the shared media
  // (partition semantics — both storage shards port the same volume).
  constexpr int64_t kSlab = 1 << 20;
  int writes_done = 0;
  for (int i = 0; i < num_guests; ++i) {
    guests[i]->blkfront()->Write(i * kSlab, Buffer(8 * 1024, static_cast<uint8_t>(i + 1)),
                                 [&writes_done](bool ok) { writes_done += ok ? 1 : 0; });
  }
  if (!sys.WaitUntil([&] { return writes_done == num_guests; }, Seconds(10))) {
    return live_fail("pre-wedge writes never completed");
  }

  phase("wedge");
  // Victim: the shard hosting a randomly chosen guest. Swallow the one TX
  // kick that crosses req_event (the stall-demo technique) — that netback
  // instance stops making progress and only the watchdog can tell.
  GuestVm* trigger = guests[plan.NextBelow(static_cast<uint64_t>(num_guests))];
  const DomId victim = trigger->netfront()->backend_dom();
  std::vector<GuestVm*> displaced;
  for (GuestVm* g : guests) {
    if (g->netfront()->backend_dom() == victim) {
      displaced.push_back(g);
    }
  }
  sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
  trigger->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  sys.RunFor(Millis(5));
  sys.faults().set_rate(FaultSite::kEventNotify, 0.0);

  phase(evacuate ? "evacuate" : "drain");
  if (evacuate) {
    if (!sys.WaitUntil([&] { return reb.evacuations() >= 1; }, Seconds(30))) {
      return live_fail("stalled shard was never evacuated");
    }
  } else if (!sys.WaitUntil([&] { return reb.drains_started() >= 1; }, Seconds(30))) {
    return live_fail("degraded shard drain never started");
  }
  if (!sys.WaitUntil(
          [&] {
            if (sys.migrations_in_flight() != 0 || reb.pending_moves() != 0) {
              return false;
            }
            for (GuestVm* g : displaced) {
              if (!g->netfront()->connected() || g->netfront()->backend_dom() == victim) {
                return false;
              }
            }
            return true;
          },
          Seconds(60))) {
    return live_fail(StrFormat("displaced guests (%d) never settled off dom%d",
                               static_cast<int>(displaced.size()), victim));
  }
  if (evacuate && pool.HasNetworkShard(victim)) {
    return live_fail("evacuated shard still in the pool under its old id");
  }

  phase("verify");
  blast();  // Service restored across the rebuilt pool.
  for (GuestVm* g : guests) {
    bool pinged = false;
    for (int attempt = 0; attempt < 3 && !pinged; ++attempt) {
      g->stack()->Ping(sys.client_ip(), 56,
                       [&pinged](bool ok, SimDuration) { pinged = pinged || ok; });
      sys.RunFor(Seconds(2));
    }
    if (!pinged) {
      return live_fail(StrFormat("guest dom%d unreachable after failover",
                                 g->domain()->id()));
    }
  }
  // Every acked write is still readable — possibly through a different
  // storage port than it was written through.
  for (int i = 0; i < num_guests; ++i) {
    Buffer readback;
    bool read_done = false;
    guests[i]->blkfront()->Read(i * kSlab, 8 * 1024, &readback,
                                [&read_done](bool r) { read_done = r; });
    if (!sys.WaitUntil([&] { return read_done; }, Seconds(10))) {
      return live_fail(StrFormat("post-failover read for guest %d never completed", i));
    }
    if (Fnv1a(readback) != Fnv1a(Buffer(8 * 1024, static_cast<uint8_t>(i + 1)))) {
      return live_fail(StrFormat("acked write lost for guest %d", i));
    }
  }
  // Packet conservation. The ledger is one-sided across a crash evacuation
  // (a frame the dead backend forwarded whose completion the guest never saw
  // is counted dropped yet delivered), and the wedged ping's loss is counted
  // in `dropped` but not in `sent`, so under-delivery is bounded by the
  // drop counters and over-delivery by what was sent.
  uint64_t dropped = 0;
  for (GuestVm* g : guests) {
    dropped += g->netfront()->tx_dropped() + g->netfront()->recovery_drops();
  }
  if (client_rx + dropped < sent || client_rx > sent) {
    return live_fail(StrFormat("packet ledger broken: rx=%llu sent=%llu dropped=%llu",
                               static_cast<unsigned long long>(client_rx),
                               static_cast<unsigned long long>(sent),
                               static_cast<unsigned long long>(dropped)));
  }

  phase("quiesce");
  sys.RunUntilIdle();

  phase("check");
  InvariantChecker checker(&sys);
  report.violations = checker.Check();
  report.ok = report.violations.empty();
  return report;
}

std::string FormatReport(const ExploreReport& report) {
  const char* extra = report.failover ? " --failover" : "";
  if (report.ok) {
    return StrFormat("seed %llu: ok\n", static_cast<unsigned long long>(report.seed));
  }
  std::string out = StrFormat("seed %llu: FAILED in phase %s\n",
                              static_cast<unsigned long long>(report.seed),
                              report.phase.c_str());
  if (!report.detail.empty()) {
    out += "  " + report.detail + "\n";
  }
  out += InvariantChecker::Format(report.violations);
  out += StrFormat("replay: kite_explore%s --seed=%llu --verbose\n", extra,
                   static_cast<unsigned long long>(report.seed));
  return out;
}

bool RunStallDemo(const std::string& dump_path) {
  auto demo_fail = [](const char* what) {
    std::fprintf(stderr, "[stall-demo] FAILED: %s\n", what);
    return false;
  };

  KiteSystem::Params params;
  // Tight thresholds so the demo stalls (and recovers) in simulated
  // milliseconds instead of the production-scale defaults.
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Millis(20);
  // The stall dump doubles as the reference DumpDiagnostics artifact; run it
  // profiled and attributed so its dispatch-profile and cpu sections are
  // populated (kite_inspect renders the cpu section verbatim).
  params.cpu_attribution = true;
  KiteSystem sys(params);
  sys.executor().EnableDispatchProfiler();

  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("stall-demo-guest");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(guest, stordom);
  if (!sys.WaitConnected(guest)) {
    return demo_fail("frontends never connected");
  }
  const DomId gid = guest->domain()->id();
  const std::string vif = StrFormat("vif%d.0", gid);
  const std::string vbd = StrFormat("vbd%d.51712", gid);
  const DomId stordom_id = stordom->domain()->id();

  // Wedge 1 — hung disk controller: the completion parks without releasing
  // its queue-depth slot, so blkback's in-flight count freezes above zero.
  sys.faults().set_rate(FaultSite::kDiskHang, 1.0);
  bool write_done = false;
  Buffer wdata(4096, 0x5a);
  guest->blkfront()->Write(0, wdata, [&write_done](bool) { write_done = true; });
  BlockDevice* disk = stordom->disk();
  if (!sys.WaitUntil([&] { return disk->hung_io_count() > 0; })) {
    return demo_fail("disk hang never tripped");
  }
  sys.faults().set_rate(FaultSite::kDiskHang, 0.0);

  // Wedge 2 — swallowed TX kick: notification suppression makes the one
  // kick that crosses req_event irreplaceable, so netback never wakes for
  // the request the guest just pushed.
  sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
  guest->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  sys.RunFor(Millis(5));
  sys.faults().set_rate(FaultSite::kEventNotify, 0.0);

  // The watchdog must flag both instances stalled — long before any
  // WaitUntil-scale timeout would.
  if (!sys.WaitUntil([&] {
        return sys.health().state(netdom->domain()->id(), vif) ==
                   HealthState::kStalled &&
               sys.health().state(stordom_id, vbd) == HealthState::kStalled;
      })) {
    return demo_fail("watchdog never reached stalled for both instances");
  }

  std::ofstream dump(dump_path);
  if (!dump) {
    return demo_fail("could not open dump path");
  }
  sys.DumpDiagnostics(dump);
  dump.close();

  // Recovery, both directions: the disk un-hangs in place (same instance
  // must return to healthy), the network domain restarts (Kite's recovery
  // story — the stalled instance dies with the domain and a fresh one pairs).
  disk->ReleaseHungIo();
  netdom = sys.RestartNetworkDomain(netdom);
  if (!sys.WaitConnected(guest, Seconds(30))) {
    return demo_fail("frontends never reconnected after restart");
  }
  if (!sys.WaitUntil([&] { return write_done; }, Seconds(10))) {
    return demo_fail("hung write never completed after ReleaseHungIo");
  }
  if (!sys.WaitUntil(
          [&] {
            return sys.health().state(stordom_id, vbd) == HealthState::kHealthy;
          },
          Seconds(10))) {
    return demo_fail("vbd never returned to healthy");
  }
  sys.RunUntilIdle();
  const std::vector<Violation> violations = InvariantChecker(&sys).Check();
  if (!violations.empty()) {
    std::fprintf(stderr, "[stall-demo] FAILED: invariants after recovery:\n%s",
                 InvariantChecker::Format(violations).c_str());
    return false;
  }
  std::printf("[stall-demo] ok: diagnostics written to %s\n", dump_path.c_str());
  return true;
}

}  // namespace kite
