#include "src/check/explore.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <utility>

#include "src/base/strings.h"
#include "src/check/frontends.h"
#include "src/check/fuzz.h"
#include "src/hv/xenbus.h"
#include "src/workloads/netbench.h"

namespace kite {

namespace {

// Fault sites a schedule may open during the fault window. Every listed
// site is recoverable once ClearRates ends the window: grant/xenstore
// failures are retried, disk errors surface as failed I/O callbacks, and
// wire loss is absorbed by timeouts. kEventNotify is deliberately absent:
// the ring notification-suppression protocol means the one kick that
// crosses req_event is irreplaceable — swallowing it parks the ring with
// no later push ever re-notifying. Real event channels are hypercalls and
// lossless; that site exists for targeted wedge tests, not for a window
// the system is expected to survive unaided.
constexpr FaultSite kWindowSites[] = {
    FaultSite::kGrantMap, FaultSite::kXenstoreRead, FaultSite::kDiskIo,
    FaultSite::kNicLoss,  FaultSite::kNicCorrupt,
};

}  // namespace

ExploreReport RunExploreSeed(const ExploreOptions& opts) {
  ExploreReport report;
  report.seed = opts.seed;

  // Scenario choices (which sites open, which domains restart) come from a
  // generator distinct from the shuffle/fault/fuzz streams so adding a
  // choice never perturbs the others.
  Rng plan(opts.seed * 0x9e3779b97f4a7c15ULL + 1);

  KiteSystem::Params params;
  params.fault_seed = opts.seed ^ 0xfa0170ULL;
  params.health = opts.health;
  KiteSystem sys(params);
  sys.EnableScheduleShuffle(opts.seed);

  auto phase = [&](const char* name) {
    report.phase = name;
    if (opts.verbose) {
      std::fprintf(stderr, "[seed %llu] phase %s (t=%.6fs)\n",
                   static_cast<unsigned long long>(opts.seed), name,
                   sys.Now().seconds());
    }
  };
  auto live_fail = [&](std::string what) {
    report.ok = false;
    // The full diagnostic bundle: health verdicts name the wedged backend,
    // flight-recorder tails show its last moves, pending events say where
    // the simulation is stuck, and the metrics say how far each path got.
    std::ostringstream diag;
    sys.DumpDiagnostics(diag);
    report.detail = std::move(what) + "\n" + diag.str();
    return report;
  };

  phase("build");
  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* g1 = sys.CreateGuest("explore-guest1");
  sys.AttachVif(g1, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(g1, stordom);
  GuestVm* g2 = sys.CreateGuest("explore-guest2");
  sys.AttachVif(g2, netdom, Ipv4Addr::FromOctets(10, 0, 0, 11));
  GuestVm* fuzz_net_guest = sys.CreateGuest("fuzz-net-guest");
  GuestVm* fuzz_blk_guest = sys.CreateGuest("fuzz-blk-guest");

  phase("connect");
  if (!sys.WaitConnected(g1) || !sys.WaitConnected(g2)) {
    return live_fail("real frontends never connected");
  }
  auto raw_net = std::make_unique<RawNetFrontend>(&sys, netdom, fuzz_net_guest);
  auto raw_blk = std::make_unique<RawBlkFrontend>(&sys, stordom, fuzz_blk_guest);
  if (!raw_net->Connect()) {
    return live_fail("raw net frontend never paired");
  }
  if (!raw_blk->Connect()) {
    return live_fail("raw blk frontend never paired");
  }

  phase("traffic");
  NuttcpConfig nut_cfg;
  nut_cfg.offered_gbps = 3.0;
  nut_cfg.datagram_bytes = 4096;
  nut_cfg.duration = Millis(50);
  NuttcpUdp nut(sys.client()->stack(), g1->stack(), g1->ip(), nut_cfg);
  nut.Run([](const NuttcpResult&) {});
  int io_done = 0;
  Buffer wdata(8192, 0xab);
  auto count_io = [&io_done](bool) { ++io_done; };
  g1->blkfront()->Write(0, wdata, count_io);
  g1->blkfront()->Read(4096, 8192, nullptr, count_io);
  g1->blkfront()->Flush(count_io);
  if (!sys.WaitUntil([&] { return nut.finished() && io_done == 3; }, Seconds(10))) {
    return live_fail("traffic phase never completed");
  }

  phase("fuzz");
  ProtocolFuzzer fuzz(opts.seed ^ 0xf022ULL);
  const int net_burst = 24 + static_cast<int>(plan.NextBelow(40));
  for (int i = 0; i < net_burst; ++i) {
    raw_net->SendTx(fuzz.MutateNetTx(raw_net->ValidTx(static_cast<uint16_t>(i))));
    if (i % 8 == 7) {
      sys.RunFor(Millis(2));
      raw_net->DrainTxResponses();
    }
  }
  const int blk_burst = 12 + static_cast<int>(plan.NextBelow(20));
  for (int i = 0; i < blk_burst; ++i) {
    const BlkRequest req = fuzz.MutateBlk(raw_blk->ValidRead(static_cast<uint64_t>(i)),
                                          raw_blk->capacity_sectors());
    if (!raw_blk->SendBlk(req)) {
      // Ring full: let the backend and disk drain, then retry once.
      sys.RunFor(Millis(50));
      raw_blk->DrainResponses();
      raw_blk->SendBlk(req);
    }
    if (i % 4 == 3) {
      sys.RunFor(Millis(10));
      raw_blk->DrainResponses();
    }
  }
  sys.RunFor(Millis(200));
  raw_net->DrainTxResponses();
  raw_blk->DrainResponses();
  // Liveness probe: after the malformed burst both backends must still
  // answer a well-formed request.
  raw_net->SendTx(raw_net->ValidTx(999));
  raw_blk->SendBlk(raw_blk->ValidRead(999));
  sys.RunFor(Millis(200));
  if (raw_net->DrainTxResponses().empty()) {
    return live_fail("netback stopped responding after fuzz burst");
  }
  if (raw_blk->DrainResponses().empty()) {
    return live_fail("blkback stopped responding after fuzz burst");
  }

  phase("fault-window");
  const int nsites = 1 + static_cast<int>(plan.NextBelow(3));
  for (int i = 0; i < nsites; ++i) {
    const FaultSite site = kWindowSites[plan.NextBelow(std::size(kWindowSites))];
    sys.faults().set_rate(site, 0.02 + 0.18 * plan.NextDouble());
  }
  // Traffic under fire. Completions are not awaited inside the window —
  // disk errors and wire loss may delay or fail them; the recovery phase
  // below waits for the drain once the rates are cleared.
  int window_io_done = 0;
  const int window_writes = 4 + static_cast<int>(plan.NextBelow(6));
  for (int i = 0; i < window_writes; ++i) {
    g1->blkfront()->Write(static_cast<int64_t>(i) * 8192, wdata,
                          [&window_io_done](bool) { ++window_io_done; });
  }
  g1->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  g2->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  for (int i = 0; i < 8; ++i) {
    raw_net->SendTx(fuzz.MutateNetTx(raw_net->ValidTx(static_cast<uint16_t>(2000 + i))));
  }
  raw_blk->SendBlk(fuzz.MutateBlk(raw_blk->ValidRead(2000), raw_blk->capacity_sectors()));
  sys.RunFor(Millis(300));

  phase("recover");
  sys.faults().ClearRates();
  int recover_done = 0;
  g1->blkfront()->Read(0, 4096, nullptr, [&recover_done](bool) { ++recover_done; });
  raw_net->SendTx(raw_net->ValidTx(3000));
  raw_blk->SendBlk(raw_blk->ValidRead(3000));
  if (!sys.WaitUntil(
          [&] { return recover_done == 1 && window_io_done == window_writes; },
          Seconds(30))) {
    return live_fail(StrFormat("fault-window I/O never drained (%d/%d writes, "
                               "recovery read %d/1)",
                               window_io_done, window_writes, recover_done));
  }
  if (!sys.WaitConnected(g1, Seconds(30)) || !sys.WaitConnected(g2, Seconds(30))) {
    return live_fail("frontends not reconnected after fault window");
  }
  sys.RunFor(Millis(100));
  raw_net->DrainTxResponses();
  raw_blk->DrainResponses();

  phase("guest-death");
  // The fuzz guests die violently — their rings may still hold junk the
  // backend never consumed; reaping must cope. g2 dies on some seeds.
  raw_net.reset();
  raw_blk.reset();
  sys.DestroyGuest(fuzz_net_guest);
  sys.DestroyGuest(fuzz_blk_guest);
  if (plan.NextBool(0.5)) {
    sys.DestroyGuest(g2);
    g2 = nullptr;
  }
  sys.RunFor(Millis(50));  // Backends reap the orphaned instances.

  phase("restart");
  const uint64_t restart_choice = plan.NextBelow(3);
  if (restart_choice == 0 || restart_choice == 2) {
    netdom = sys.RestartNetworkDomain(netdom);
  }
  if (restart_choice == 1 || restart_choice == 2) {
    stordom = sys.RestartStorageDomain(stordom);
  }
  if (!sys.WaitConnected(g1, Seconds(30)) ||
      (g2 != nullptr && !sys.WaitConnected(g2, Seconds(30)))) {
    return live_fail("frontends never reconnected after driver-domain restart");
  }
  // Post-restart proof: storage answers and the data path carries a ping.
  int post_read = 0;
  g1->blkfront()->Read(0, 4096, nullptr, [&post_read](bool) { ++post_read; });
  if (!sys.WaitUntil([&] { return post_read == 1; }, Seconds(30))) {
    return live_fail("post-restart read never completed");
  }
  bool pinged = false;
  for (int attempt = 0; attempt < 5 && !pinged; ++attempt) {
    bool done = false;
    g1->stack()->Ping(sys.client_ip(), 56, [&](bool ok, SimDuration) {
      done = true;
      pinged = pinged || ok;
    });
    sys.RunFor(Seconds(2));
    (void)done;
  }
  if (!pinged) {
    return live_fail("post-restart ping never succeeded");
  }

  phase("quiesce");
  sys.RunUntilIdle();

  phase("check");
  InvariantChecker checker(&sys);
  report.violations = checker.Check();
  report.ok = report.violations.empty();
  return report;
}

std::string FormatReport(const ExploreReport& report) {
  if (report.ok) {
    return StrFormat("seed %llu: ok\n", static_cast<unsigned long long>(report.seed));
  }
  std::string out = StrFormat("seed %llu: FAILED in phase %s\n",
                              static_cast<unsigned long long>(report.seed),
                              report.phase.c_str());
  if (!report.detail.empty()) {
    out += "  " + report.detail + "\n";
  }
  out += InvariantChecker::Format(report.violations);
  out += StrFormat("replay: kite_explore --seed=%llu --verbose\n",
                   static_cast<unsigned long long>(report.seed));
  return out;
}

bool RunStallDemo(const std::string& dump_path) {
  auto demo_fail = [](const char* what) {
    std::fprintf(stderr, "[stall-demo] FAILED: %s\n", what);
    return false;
  };

  KiteSystem::Params params;
  // Tight thresholds so the demo stalls (and recovers) in simulated
  // milliseconds instead of the production-scale defaults.
  params.health.probe_period = Millis(1);
  params.health.degraded_after = Millis(5);
  params.health.stalled_after = Millis(20);
  KiteSystem sys(params);

  NetworkDomain* netdom = sys.CreateNetworkDomain();
  StorageDomain* stordom = sys.CreateStorageDomain();
  GuestVm* guest = sys.CreateGuest("stall-demo-guest");
  sys.AttachVif(guest, netdom, Ipv4Addr::FromOctets(10, 0, 0, 10));
  sys.AttachVbd(guest, stordom);
  if (!sys.WaitConnected(guest)) {
    return demo_fail("frontends never connected");
  }
  const DomId gid = guest->domain()->id();
  const std::string vif = StrFormat("vif%d.0", gid);
  const std::string vbd = StrFormat("vbd%d.51712", gid);
  const DomId stordom_id = stordom->domain()->id();

  // Wedge 1 — hung disk controller: the completion parks without releasing
  // its queue-depth slot, so blkback's in-flight count freezes above zero.
  sys.faults().set_rate(FaultSite::kDiskHang, 1.0);
  bool write_done = false;
  Buffer wdata(4096, 0x5a);
  guest->blkfront()->Write(0, wdata, [&write_done](bool) { write_done = true; });
  BlockDevice* disk = stordom->disk();
  if (!sys.WaitUntil([&] { return disk->hung_io_count() > 0; })) {
    return demo_fail("disk hang never tripped");
  }
  sys.faults().set_rate(FaultSite::kDiskHang, 0.0);

  // Wedge 2 — swallowed TX kick: notification suppression makes the one
  // kick that crosses req_event irreplaceable, so netback never wakes for
  // the request the guest just pushed.
  sys.faults().set_rate(FaultSite::kEventNotify, 1.0);
  guest->stack()->Ping(sys.client_ip(), 56, [](bool, SimDuration) {});
  sys.RunFor(Millis(5));
  sys.faults().set_rate(FaultSite::kEventNotify, 0.0);

  // The watchdog must flag both instances stalled — long before any
  // WaitUntil-scale timeout would.
  if (!sys.WaitUntil([&] {
        return sys.health().state(netdom->domain()->id(), vif) ==
                   HealthState::kStalled &&
               sys.health().state(stordom_id, vbd) == HealthState::kStalled;
      })) {
    return demo_fail("watchdog never reached stalled for both instances");
  }

  std::ofstream dump(dump_path);
  if (!dump) {
    return demo_fail("could not open dump path");
  }
  sys.DumpDiagnostics(dump);
  dump.close();

  // Recovery, both directions: the disk un-hangs in place (same instance
  // must return to healthy), the network domain restarts (Kite's recovery
  // story — the stalled instance dies with the domain and a fresh one pairs).
  disk->ReleaseHungIo();
  netdom = sys.RestartNetworkDomain(netdom);
  if (!sys.WaitConnected(guest, Seconds(30))) {
    return demo_fail("frontends never reconnected after restart");
  }
  if (!sys.WaitUntil([&] { return write_done; }, Seconds(10))) {
    return demo_fail("hung write never completed after ReleaseHungIo");
  }
  if (!sys.WaitUntil(
          [&] {
            return sys.health().state(stordom_id, vbd) == HealthState::kHealthy;
          },
          Seconds(10))) {
    return demo_fail("vbd never returned to healthy");
  }
  sys.RunUntilIdle();
  const std::vector<Violation> violations = InvariantChecker(&sys).Check();
  if (!violations.empty()) {
    std::fprintf(stderr, "[stall-demo] FAILED: invariants after recovery:\n%s",
                 InvariantChecker::Format(violations).c_str());
    return false;
  }
  std::printf("[stall-demo] ok: diagnostics written to %s\n", dump_path.c_str());
  return true;
}

}  // namespace kite
