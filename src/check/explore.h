// Replayable whole-system schedule exploration (the kite_explore harness).
//
// One seed drives everything a run does: the executor's schedule shuffle,
// the fault injector, the protocol fuzzer, and every scenario choice (which
// driver domains restart, which fault sites open). Sweeping seeds therefore
// explores distinct legal schedules and failure patterns of one combined
// net+storage scenario, and any failing seed replays exactly with
// `kite_explore --seed=S`.
//
// Each seed runs the full lifecycle — connect, traffic, ring fuzzing, a
// fault window, guest death, driver-domain restart, quiesce — and then
// audits the survivors with the InvariantChecker. Liveness failures (a
// phase that never completes) are reported with the executor's pending-event
// dump so a stuck seed is debuggable from its artifact alone.
#ifndef SRC_CHECK_EXPLORE_H_
#define SRC_CHECK_EXPLORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/invariants.h"

namespace kite {

struct ExploreOptions {
  uint64_t seed = 1;
  // Print per-phase progress to stderr (replay/debugging aid).
  bool verbose = false;
  // Watchdog thresholds for the explored system. CI sweeps seeds with these
  // tightened far below the defaults to prove the watchdog never false-flags
  // a healthy-but-busy backend on any explored schedule.
  HealthParams health;
};

struct ExploreReport {
  uint64_t seed = 0;
  bool ok = false;
  bool failover = false;              // Replay needs --failover.
  std::string phase;                  // Last phase entered.
  std::vector<Violation> violations;  // Invariant failures (check phase).
  std::string detail;                 // Liveness failure detail, if any.
};

// Runs one seed end to end. Never throws; a crash (KITE_CHECK) inside the
// simulated system is itself a reproducible finding — the driver prints the
// seed before entering the run so the replay command survives an abort.
ExploreReport RunExploreSeed(const ExploreOptions& opts);

// Failover exploration (kite_explore --failover): one seed of the sharded
// topology under the Rebalancer. The seed picks the pool size, the guest
// count, the victim shard (whichever hosts a randomly chosen guest), and
// whether the watchdog thresholds route the wedge through the degraded
// *drain* path (graceful migrations) or the stalled *evacuation* path
// (forced restart), so sweeping seeds explores migration/restart races under
// live traffic. The wedge itself is the stall-demo technique: swallow the
// one TX kick that crosses req_event. Audited like RunExploreSeed — packet
// conservation, per-guest write read-back, and the full invariant checker.
ExploreReport RunFailoverSeed(const ExploreOptions& opts);

// Failure reports end with the exact replay command line.
std::string FormatReport(const ExploreReport& report);

// Deterministic end-to-end stall demo (the CI negative watchdog job): wedges
// netback (a swallowed TX kick) and blkback (a hung disk controller), waits
// for the watchdog to flag both instances stalled, writes the diagnostic
// bundle to `dump_path`, then recovers — ReleaseHungIo for the disk, a
// driver-domain restart for the network — and verifies the system quiesces
// with every invariant holding and every surviving instance healthy again.
bool RunStallDemo(const std::string& dump_path);

}  // namespace kite

#endif  // SRC_CHECK_EXPLORE_H_
