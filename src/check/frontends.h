// Hand-rolled PV frontends for protocol fuzzing.
//
// These impersonate netfront/blkfront from a guest domain: they run the
// toolstack xenstore writes AttachVif/AttachVbd would do, allocate and grant
// the shared rings themselves, and publish Initialised — but never construct
// a Netfront or Blkfront. That leaves the caller in full control of every
// ring field, so it can push the exact malformed requests a compromised
// guest could. Extracted from the Misbehaving*Frontend test fixtures so the
// explore harness and the fuzz tests drive one implementation.
//
// Neither class advances simulated time: callers interleave Send*/Drain*
// with KiteSystem::RunFor so the schedule stays under the explorer's
// control.
#ifndef SRC_CHECK_FRONTENDS_H_
#define SRC_CHECK_FRONTENDS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system.h"

namespace kite {

class RawNetFrontend {
 public:
  // `guest` must have no real VIF on `devid`. Construction only records
  // identifiers; Connect() does the work.
  RawNetFrontend(KiteSystem* sys, NetworkDomain* netdom, GuestVm* guest, int devid = 0);

  // Toolstack + frontend halves of AttachVif, then waits for the backend to
  // pair. False if the backend never connected.
  bool Connect();

  NetbackInstance* vif() const;
  GrantRef data_gref() const { return data_gref_; }
  NetTxFrontRing* tx_ring() { return tx_ring_.get(); }

  // Produces + pushes + kicks one Tx request. False when the ring is full
  // (caller should drain responses and advance time first).
  bool SendTx(const NetTxRequest& req);
  // Consumes every published Tx response.
  std::vector<NetTxResponse> DrainTxResponses();
  // A well-formed request against the granted data page.
  NetTxRequest ValidTx(uint16_t id) const;

 private:
  KiteSystem* sys_;
  NetworkDomain* netdom_;
  GuestVm* guest_;
  int devid_;
  DomId gid_;
  DomId bid_;
  std::string fe_;
  PageRef tx_page_, rx_page_, data_page_;
  std::shared_ptr<NetTxSharedRing> tx_shared_;
  std::shared_ptr<NetRxSharedRing> rx_shared_;
  std::unique_ptr<NetTxFrontRing> tx_ring_;
  std::unique_ptr<NetRxFrontRing> rx_ring_;
  GrantRef tx_gref_ = kInvalidGrantRef;
  GrantRef rx_gref_ = kInvalidGrantRef;
  GrantRef data_gref_ = kInvalidGrantRef;
  EvtPort port_ = kInvalidPort;
};

class RawBlkFrontend {
 public:
  RawBlkFrontend(KiteSystem* sys, StorageDomain* stordom, GuestVm* guest,
                 int devid = 51712 /* xvda */);

  // Toolstack + frontend halves of AttachVbd (including the pause that lets
  // blkback advertise), then waits for pairing.
  bool Connect();

  BlkbackInstance* vbd() const;
  GrantRef data_gref() const { return data_gref_; }
  BlkFrontRing* ring() { return ring_.get(); }
  uint64_t capacity_sectors() const;

  bool SendBlk(const BlkRequest& req);
  std::vector<BlkResponse> DrainResponses();
  // A well-formed single-segment read of sector 0 into the data page.
  BlkRequest ValidRead(uint64_t id) const;

 private:
  KiteSystem* sys_;
  StorageDomain* stordom_;
  GuestVm* guest_;
  int devid_;
  DomId gid_;
  DomId bid_;
  std::string fe_;
  PageRef ring_page_, data_page_;
  std::shared_ptr<BlkSharedRing> shared_;
  std::unique_ptr<BlkFrontRing> ring_;
  GrantRef ring_gref_ = kInvalidGrantRef;
  GrantRef data_gref_ = kInvalidGrantRef;
  EvtPort port_ = kInvalidPort;
};

}  // namespace kite

#endif  // SRC_CHECK_FRONTENDS_H_
