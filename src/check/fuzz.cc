#include "src/check/fuzz.h"

#include <utility>

namespace kite {

NetTxRequest ProtocolFuzzer::MutateNetTx(NetTxRequest valid) {
  switch (rng_.NextBelow(8)) {
    case 0:  // Bit-flip in the size field.
      valid.size ^= static_cast<uint16_t>(1u << rng_.NextBelow(16));
      break;
    case 1:  // Bit-flip in the offset field.
      valid.offset ^= static_cast<uint16_t>(1u << rng_.NextBelow(16));
      break;
    case 2:  // Truncation / zero-length frame.
      valid.size = 0;
      break;
    case 3:  // Offset+size straddles the page end (each field alone fits).
      valid.offset = static_cast<uint16_t>(kPageSize - rng_.NextBelow(128) - 1);
      valid.size = static_cast<uint16_t>(64 + rng_.NextBelow(256));
      break;
    case 4:  // Bogus grant reference.
      valid.gref = static_cast<GrantRef>(rng_.NextU64());
      break;
    case 5:  // Field swap: offset and size exchanged.
      std::swap(valid.offset, valid.size);
      break;
    default:  // Cases 6-7: pass through valid.
      break;
  }
  return valid;
}

BlkRequest ProtocolFuzzer::MutateBlk(BlkRequest valid, uint64_t capacity_sectors) {
  switch (rng_.NextBelow(10)) {
    case 0:  // Segment count past the embedded array.
      valid.nr_segments = static_cast<uint8_t>(12 + rng_.NextBelow(244));
      break;
    case 1:  // Inverted sector range (bytes() would underflow).
      valid.segments[0].first_sect = static_cast<uint8_t>(1 + rng_.NextBelow(7));
      valid.segments[0].last_sect =
          static_cast<uint8_t>(rng_.NextBelow(valid.segments[0].first_sect));
      break;
    case 2:  // Sector range past the page.
      valid.segments[0].last_sect = static_cast<uint8_t>(8 + rng_.NextBelow(248));
      break;
    case 3:  // Far past the disk.
      valid.sector_number = (1ULL << 40) + rng_.NextU64() % (1ULL << 20);
      break;
    case 4:  // At the exact capacity boundary: ends 1..7 sectors past it.
      valid.sector_number = capacity_sectors - rng_.NextBelow(8);
      break;
    case 5:  // Bogus data grant.
      valid.segments[0].gref = static_cast<GrantRef>(rng_.NextU64());
      break;
    case 6:  // Duplicate grant across two segments (legal shape, aliased).
      valid.nr_segments = 2;
      valid.segments[1] = valid.segments[0];
      valid.sector_number = rng_.NextBelow(capacity_sectors - 2 * kSectorsPerPage);
      break;
    case 7: {  // Indirect with a bogus descriptor and an impossible count.
      const BlkOp inner = valid.op;
      valid.op = BlkOp::kIndirect;
      valid.indirect_op = inner;
      valid.indirect_gref = static_cast<GrantRef>(rng_.NextU64());
      valid.nr_indirect_segments = static_cast<uint16_t>(rng_.NextBelow(1024));
      break;
    }
    default:  // Cases 8-9: pass through valid.
      break;
  }
  return valid;
}

TcpSegment ProtocolFuzzer::MutateTcp(TcpSegment valid) {
  switch (rng_.NextBelow(12)) {
    case 0:  // Illegal flag soup (e.g. SYN+FIN, SYN+RST).
      valid.syn = rng_.NextBool(0.5);
      valid.fin = rng_.NextBool(0.5);
      valid.rst = rng_.NextBool(0.5);
      valid.ack_flag = rng_.NextBool(0.5);
      break;
    case 1:  // Near-miss seq: lands just inside/outside the window edge.
      valid.seq += static_cast<uint32_t>(rng_.NextBelow(8192)) - 4096u;
      break;
    case 2:  // Far-off seq, including wraparound territory.
      valid.seq ^= 1u << (16 + rng_.NextBelow(16));
      break;
    case 3:  // Near-miss ack: acks data never sent, or re-acks old data.
      valid.ack_flag = true;
      valid.ack += static_cast<uint32_t>(rng_.NextBelow(8192)) - 4096u;
      break;
    case 4:  // Far-future ack.
      valid.ack_flag = true;
      valid.ack += 1u << (20 + rng_.NextBelow(10));
      break;
    case 5:  // Window collapse / shrink to a sliver.
      valid.window = static_cast<uint32_t>(rng_.NextBelow(2));
      break;
    case 6:  // Payload truncation (header promises more than arrives).
      if (!valid.payload.empty()) {
        valid.payload.resize(rng_.NextBelow(valid.payload.size()));
      }
      break;
    case 7:  // Duplicate-looking bare ACK (dup-ack generator food).
      valid.payload.clear();
      valid.syn = valid.fin = valid.rst = false;
      valid.ack_flag = true;
      break;
    case 8:  // Port corruption: steered at a different (likely closed) flow.
      valid.dst_port ^= static_cast<uint16_t>(1u << rng_.NextBelow(16));
      break;
    default:  // Cases 9-11: pass through valid.
      break;
  }
  return valid;
}

}  // namespace kite
