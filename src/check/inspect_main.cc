// kite_inspect: render BENCH_*.json files and diagnostic dumps as a
// per-domain, top-style terminal view.
//
//   kite_inspect BENCH_fig06_nuttcp.json      one bench result
//   kite_inspect BENCH_*.json                 several (shell glob)
//   kite_inspect stall-dump.txt               summarize a DumpDiagnostics file
//
// Bench JSON is the machine-readable pipeline output (bench/common.h): flat
// arrays of one-object-per-line rows. The parser below leans on exactly that
// shape — it is a line scanner, not a general JSON parser, which keeps this
// binary dependency-free (links kite_base only).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/strings.h"

namespace {

using kite::StrFormat;

// --- Line-level field extraction for bench rows. ---

// Value of "key":"..." on this line (optional space after the colon), or
// empty.
std::string FieldStr(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  at += needle.size();
  while (at < line.size() && line[at] == ' ') {
    ++at;
  }
  if (at >= line.size() || line[at] != '"') {
    return "";
  }
  const size_t begin = at + 1;
  std::string out;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out.push_back(line[++i]);
    } else if (line[i] == '"') {
      return out;
    } else {
      out.push_back(line[i]);
    }
  }
  return out;
}

// Value of "key":<number> on this line, or fallback.
double FieldNum(const std::string& line, const std::string& key, double fallback = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos || line.compare(at + needle.size(), 1, "\"") == 0) {
    return fallback;
  }
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::string HumanCount(double v) {
  if (v >= 1e9) {
    return StrFormat("%.2fG", v / 1e9);
  }
  if (v >= 1e6) {
    return StrFormat("%.2fM", v / 1e6);
  }
  if (v >= 1e4) {
    return StrFormat("%.1fk", v / 1e3);
  }
  return StrFormat("%.10g", v);
}

struct CounterRow {
  std::string label;
  std::string domain;
  std::string device;
  std::string name;
  double value = 0;
};

struct StageRow {
  std::string label;
  std::string key;
  double count = 0, p50 = 0, p99 = 0;
};

struct TimelineRow {
  std::string label;
  std::string domain;
  std::string device;
  std::string name;
  std::string kind;
  double period_ns = 0;
  std::vector<double> values;  // One per sample tick, time-ordered.
};

// Parses the "points":[[t_ns,v],...] pair list on a timeline row.
void ParsePoints(const std::string& line, TimelineRow* row) {
  const size_t at = line.find("\"points\":[");
  if (at == std::string::npos) {
    return;
  }
  const char* p = line.c_str() + at + std::strlen("\"points\":[");
  while (*p != '\0' && *p != ']') {
    if (*p == '[') {
      char* end = nullptr;
      std::strtod(p + 1, &end);  // Timestamp: implied by index * period.
      if (end == nullptr || *end != ',') {
        return;
      }
      row->values.push_back(std::strtod(end + 1, &end));
      p = end;
      while (*p == ']') {
        ++p;  // Closes this pair; the loop's outer ']' closes the list.
      }
      if (*p == ',') {
        ++p;
      }
    } else {
      ++p;
    }
  }
}

// An 8-level Unicode block-bar sparkline, min..max scaled. Long series are
// resampled down to `width` buckets (max within each bucket, so a one-tick
// dip or spike always survives the resample).
std::string Sparkline(const std::vector<double>& values, size_t width = 48) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return "";
  }
  std::vector<double> v;
  if (values.size() <= width) {
    v = values;
  } else {
    for (size_t b = 0; b < width; ++b) {
      const size_t begin = b * values.size() / width;
      const size_t end = std::max(begin + 1, (b + 1) * values.size() / width);
      double m = values[begin];
      for (size_t i = begin; i < end && i < values.size(); ++i) {
        m = std::max(m, values[i]);
      }
      v.push_back(m);
    }
  }
  double lo = v[0], hi = v[0];
  for (double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::string out;
  for (double x : v) {
    const double norm = hi > lo ? (x - lo) / (hi - lo) : 0.0;
    out += kBlocks[std::min<size_t>(7, static_cast<size_t>(norm * 7.999))];
  }
  return out;
}

// Splits "domain/device/name" (device may contain no '/', the key always has
// exactly two separators by construction).
bool SplitKey3(const std::string& key, std::string* domain, std::string* device,
               std::string* name) {
  const size_t a = key.find('/');
  if (a == std::string::npos) {
    return false;
  }
  const size_t b = key.find('/', a + 1);
  if (b == std::string::npos) {
    return false;
  }
  *domain = key.substr(0, a);
  *device = key.substr(a + 1, b - a - 1);
  *name = key.substr(b + 1);
  return true;
}

bool SplitKey(const std::string& key, CounterRow* row) {
  return SplitKey3(key, &row->domain, &row->device, &row->name);
}

int InspectBenchJson(const std::string& path, std::ifstream& in) {
  std::string line;
  std::string figure, title, git_sha, params;
  std::vector<std::string> series, latency;
  std::vector<CounterRow> counters;
  std::vector<StageRow> stages;
  std::vector<TimelineRow> timelines;
  enum Section { kNone, kSeries, kLatency, kStage, kCounters, kTimelines } section = kNone;
  while (std::getline(in, line)) {
    if (line.find("\"figure\":") != std::string::npos) {
      figure = FieldStr(line, "figure");
    } else if (line.find("\"title\":") != std::string::npos && title.empty()) {
      title = FieldStr(line, "title");
    } else if (line.find("\"git_sha\":") != std::string::npos) {
      git_sha = FieldStr(line, "git_sha");
    } else if (line.find("\"params\":") != std::string::npos) {
      const size_t open = line.find('{');
      const size_t close = line.rfind('}');
      if (open != std::string::npos && close != std::string::npos && close > open) {
        params = line.substr(open + 1, close - open - 1);
      }
    } else if (line.find("\"series\": [") != std::string::npos) {
      section = kSeries;
    } else if (line.find("\"latency\": [") != std::string::npos) {
      section = kLatency;
    } else if (line.find("\"stage_latency_ns\": [") != std::string::npos) {
      section = kStage;
    } else if (line.find("\"counters\": [") != std::string::npos) {
      section = kCounters;
    } else if (line.find("\"timelines\": [") != std::string::npos) {
      section = kTimelines;
    } else if (line.find('{') != std::string::npos && section != kNone) {
      switch (section) {
        case kSeries:
          series.push_back(StrFormat("%-28s %-20s %s",
                                     FieldStr(line, "name").c_str(),
                                     FieldStr(line, "label").c_str(),
                                     StrFormat("%.10g", FieldNum(line, "value")).c_str()));
          break;
        case kLatency:
          latency.push_back(StrFormat(
              "%-28s %-20s n=%-9s p50=%-9s p99=%-9s max=%s",
              FieldStr(line, "name").c_str(), FieldStr(line, "label").c_str(),
              HumanCount(FieldNum(line, "count")).c_str(),
              StrFormat("%.1fus", FieldNum(line, "p50_ns") / 1e3).c_str(),
              StrFormat("%.1fus", FieldNum(line, "p99_ns") / 1e3).c_str(),
              StrFormat("%.1fus", FieldNum(line, "max_ns") / 1e3).c_str()));
          break;
        case kStage: {
          StageRow s;
          s.label = FieldStr(line, "label");
          s.key = FieldStr(line, "key");
          s.count = FieldNum(line, "count");
          s.p50 = FieldNum(line, "p50");
          s.p99 = FieldNum(line, "p99");
          stages.push_back(std::move(s));
          break;
        }
        case kCounters: {
          CounterRow c;
          c.label = FieldStr(line, "label");
          c.value = FieldNum(line, "value");
          if (SplitKey(FieldStr(line, "key"), &c)) {
            counters.push_back(std::move(c));
          }
          break;
        }
        case kTimelines: {
          TimelineRow t;
          t.label = FieldStr(line, "label");
          t.kind = FieldStr(line, "kind");
          t.period_ns = FieldNum(line, "period_ns");
          if (SplitKey3(FieldStr(line, "key"), &t.domain, &t.device, &t.name)) {
            ParsePoints(line, &t);
            timelines.push_back(std::move(t));
          }
          break;
        }
        case kNone:
          break;
      }
    }
  }

  std::printf("== %s — %s (git %s)\n", figure.empty() ? path.c_str() : figure.c_str(),
              title.c_str(), git_sha.empty() ? "?" : git_sha.c_str());
  if (!params.empty()) {
    std::printf("   params: %s\n", params.c_str());
  }
  if (!series.empty()) {
    std::printf("-- series --\n");
    for (const std::string& s : series) {
      std::printf("  %s\n", s.c_str());
    }
  }
  if (!latency.empty()) {
    std::printf("-- workload latency --\n");
    for (const std::string& s : latency) {
      std::printf("  %s\n", s.c_str());
    }
  }

  // Sampled timelines (DESIGN.md §15): per domain, the few series that moved
  // the most as sparklines, then the biggest movers across the whole run.
  if (!timelines.empty()) {
    struct Ranked {
      const TimelineRow* row;
      double lo = 0, hi = 0, range = 0, rel = 0;
    };
    auto rank = [](const TimelineRow& t) {
      Ranked r{&t};
      if (t.values.empty()) {
        return r;
      }
      r.lo = r.hi = t.values[0];
      for (double v : t.values) {
        r.lo = std::min(r.lo, v);
        r.hi = std::max(r.hi, v);
      }
      r.range = r.hi - r.lo;
      const double scale = std::max(std::max(r.hi, -r.lo), 1e-12);
      r.rel = r.range / scale;
      return r;
    };
    auto moves_more = [](const Ranked& a, const Ranked& b) {
      if (a.rel != b.rel) {
        return a.rel > b.rel;
      }
      if (a.range != b.range) {
        return a.range > b.range;
      }
      return a.row->device + "/" + a.row->name < b.row->device + "/" + b.row->name;
    };
    std::map<std::string, std::vector<Ranked>> by_domain;
    for (const TimelineRow& t : timelines) {
      by_domain[t.domain].push_back(rank(t));
    }
    std::printf("-- timelines: %zu series, %.10g ms/tick --\n", timelines.size(),
                timelines[0].period_ns / 1e6);
    constexpr size_t kPerDomain = 3;
    for (auto& [domain, rows] : by_domain) {
      std::sort(rows.begin(), rows.end(), moves_more);
      std::printf("  %s (%zu series)\n", domain.c_str(), rows.size());
      for (size_t i = 0; i < rows.size() && i < kPerDomain; ++i) {
        const Ranked& r = rows[i];
        std::printf("    %-34s %s min=%s max=%s last=%s\n",
                    (r.row->device + "/" + r.row->name).c_str(),
                    Sparkline(r.row->values).c_str(), HumanCount(r.lo).c_str(),
                    HumanCount(r.hi).c_str(),
                    HumanCount(r.row->values.empty() ? 0 : r.row->values.back()).c_str());
      }
      if (rows.size() > kPerDomain) {
        std::printf("    (+%zu more series)\n", rows.size() - kPerDomain);
      }
    }
    std::vector<Ranked> movers;
    for (const auto& [domain, rows] : by_domain) {
      for (const Ranked& r : rows) {
        if (r.row->values.size() >= 2 && r.range > 0) {
          movers.push_back(r);
        }
      }
    }
    std::sort(movers.begin(), movers.end(), moves_more);
    if (!movers.empty()) {
      std::printf("-- top movers --\n");
      for (size_t i = 0; i < movers.size() && i < 10; ++i) {
        const Ranked& r = movers[i];
        std::printf("  %-40s swing %3.0f%%  %s\n",
                    (r.row->domain + "/" + r.row->device + "/" + r.row->name).c_str(),
                    100.0 * r.rel, Sparkline(r.row->values, 32).c_str());
      }
    }
  }

  // The top-style view: per run label, per domain, its devices' counters.
  std::map<std::string, std::map<std::string, std::map<std::string, std::string>>> top;
  for (const CounterRow& c : counters) {
    std::string& cell = top[c.label][c.domain][c.device];
    if (!cell.empty()) {
      cell += " ";
    }
    cell += c.name + "=" + HumanCount(c.value);
  }
  for (const auto& [label, domains] : top) {
    std::printf("-- run %s: %zu domain(s) --\n", label.c_str(), domains.size());
    for (const auto& [domain, devices] : domains) {
      std::printf("  %s\n", domain.c_str());
      for (const auto& [device, cell] : devices) {
        std::printf("    %-16s %s\n", device.c_str(), cell.c_str());
      }
    }
    for (const StageRow& s : stages) {
      if (s.label == label) {
        std::printf("  stage %-40s n=%-9s p50=%.1fus p99=%.1fus\n", s.key.c_str(),
                    HumanCount(s.count).c_str(), s.p50 / 1e3, s.p99 / 1e3);
      }
    }
  }
  return 0;
}

// A DumpDiagnostics text file: health, per-shard placement, and invariants
// verbatim (the triage signal), everything else as one-line section sizes.
int InspectDiagnosticsDump(const std::string& path, std::ifstream& in) {
  std::string line, section = "preamble";
  std::map<std::string, std::vector<std::string>> sections;
  while (std::getline(in, line)) {
    if (line.rfind("---- ", 0) == 0) {
      const size_t end = line.find(" ----", 5);
      section = end != std::string::npos ? line.substr(5, end - 5) : line;
      continue;
    }
    if (line.rfind("====", 0) == 0) {
      continue;
    }
    sections[section].push_back(line);
  }
  std::printf("== diagnostics %s\n", path.c_str());
  // Placement comes before health: "which shard serves whom" is the first
  // question a failover triage asks, and each row already carries the
  // per-device verdicts.
  for (const char* verbatim : {"placement", "health", "invariants", "cpu"}) {
    // The cpu section only exists when the dump was taken with attribution
    // enabled; don't print an empty header for plain dumps.
    if (std::strcmp(verbatim, "cpu") == 0 &&
        sections.find("cpu") == sections.end()) {
      continue;
    }
    std::printf("-- %s --\n", verbatim);
    for (const std::string& l : sections[verbatim]) {
      std::printf("%s\n", l.c_str());
    }
  }
  for (const auto& [name, lines] : sections) {
    if (name == "placement" || name == "health" || name == "invariants" ||
        name == "cpu" || name == "preamble") {
      continue;
    }
    std::printf("-- %s: %zu line(s) (see %s) --\n", name.c_str(), lines.size(),
                path.c_str());
  }
  return 0;
}

int InspectFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kite_inspect: cannot open %s\n", path.c_str());
    return 1;
  }
  // Sniff the format: bench JSON starts with '{'; a DumpDiagnostics file
  // starts with its banner.
  std::string first;
  std::getline(in, first);
  in.seekg(0);
  if (first.rfind('{', 0) == 0) {
    return InspectBenchJson(path, in);
  }
  if (first.rfind("==== KITE DIAGNOSTICS", 0) == 0) {
    return InspectDiagnosticsDump(path, in);
  }
  std::fprintf(stderr,
               "kite_inspect: %s is neither a BENCH_*.json nor a diagnostics dump\n",
               path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <BENCH_*.json | diagnostics-dump.txt> [more files...]\n",
                 argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) {
      std::printf("\n");
    }
    rc |= InspectFile(argv[i]);
  }
  return rc;
}
