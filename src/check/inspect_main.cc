// kite_inspect: render BENCH_*.json files and diagnostic dumps as a
// per-domain, top-style terminal view.
//
//   kite_inspect BENCH_fig06_nuttcp.json      one bench result
//   kite_inspect BENCH_*.json                 several (shell glob)
//   kite_inspect stall-dump.txt               summarize a DumpDiagnostics file
//
// Bench JSON is the machine-readable pipeline output (bench/common.h): flat
// arrays of one-object-per-line rows. The parser below leans on exactly that
// shape — it is a line scanner, not a general JSON parser, which keeps this
// binary dependency-free (links kite_base only).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/strings.h"

namespace {

using kite::StrFormat;

// --- Line-level field extraction for bench rows. ---

// Value of "key":"..." on this line (optional space after the colon), or
// empty.
std::string FieldStr(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  at += needle.size();
  while (at < line.size() && line[at] == ' ') {
    ++at;
  }
  if (at >= line.size() || line[at] != '"') {
    return "";
  }
  const size_t begin = at + 1;
  std::string out;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out.push_back(line[++i]);
    } else if (line[i] == '"') {
      return out;
    } else {
      out.push_back(line[i]);
    }
  }
  return out;
}

// Value of "key":<number> on this line, or fallback.
double FieldNum(const std::string& line, const std::string& key, double fallback = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos || line.compare(at + needle.size(), 1, "\"") == 0) {
    return fallback;
  }
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::string HumanCount(double v) {
  if (v >= 1e9) {
    return StrFormat("%.2fG", v / 1e9);
  }
  if (v >= 1e6) {
    return StrFormat("%.2fM", v / 1e6);
  }
  if (v >= 1e4) {
    return StrFormat("%.1fk", v / 1e3);
  }
  return StrFormat("%.10g", v);
}

struct CounterRow {
  std::string label;
  std::string domain;
  std::string device;
  std::string name;
  double value = 0;
};

struct StageRow {
  std::string label;
  std::string key;
  double count = 0, p50 = 0, p99 = 0;
};

// Splits "domain/device/name" (device may contain no '/', the key always has
// exactly two separators by construction).
bool SplitKey(const std::string& key, CounterRow* row) {
  const size_t a = key.find('/');
  if (a == std::string::npos) {
    return false;
  }
  const size_t b = key.find('/', a + 1);
  if (b == std::string::npos) {
    return false;
  }
  row->domain = key.substr(0, a);
  row->device = key.substr(a + 1, b - a - 1);
  row->name = key.substr(b + 1);
  return true;
}

int InspectBenchJson(const std::string& path, std::ifstream& in) {
  std::string line;
  std::string figure, title, git_sha, params;
  std::vector<std::string> series, latency;
  std::vector<CounterRow> counters;
  std::vector<StageRow> stages;
  enum Section { kNone, kSeries, kLatency, kStage, kCounters } section = kNone;
  while (std::getline(in, line)) {
    if (line.find("\"figure\":") != std::string::npos) {
      figure = FieldStr(line, "figure");
    } else if (line.find("\"title\":") != std::string::npos && title.empty()) {
      title = FieldStr(line, "title");
    } else if (line.find("\"git_sha\":") != std::string::npos) {
      git_sha = FieldStr(line, "git_sha");
    } else if (line.find("\"params\":") != std::string::npos) {
      const size_t open = line.find('{');
      const size_t close = line.rfind('}');
      if (open != std::string::npos && close != std::string::npos && close > open) {
        params = line.substr(open + 1, close - open - 1);
      }
    } else if (line.find("\"series\": [") != std::string::npos) {
      section = kSeries;
    } else if (line.find("\"latency\": [") != std::string::npos) {
      section = kLatency;
    } else if (line.find("\"stage_latency_ns\": [") != std::string::npos) {
      section = kStage;
    } else if (line.find("\"counters\": [") != std::string::npos) {
      section = kCounters;
    } else if (line.find('{') != std::string::npos && section != kNone) {
      switch (section) {
        case kSeries:
          series.push_back(StrFormat("%-28s %-20s %s",
                                     FieldStr(line, "name").c_str(),
                                     FieldStr(line, "label").c_str(),
                                     StrFormat("%.10g", FieldNum(line, "value")).c_str()));
          break;
        case kLatency:
          latency.push_back(StrFormat(
              "%-28s %-20s n=%-9s p50=%-9s p99=%-9s max=%s",
              FieldStr(line, "name").c_str(), FieldStr(line, "label").c_str(),
              HumanCount(FieldNum(line, "count")).c_str(),
              StrFormat("%.1fus", FieldNum(line, "p50_ns") / 1e3).c_str(),
              StrFormat("%.1fus", FieldNum(line, "p99_ns") / 1e3).c_str(),
              StrFormat("%.1fus", FieldNum(line, "max_ns") / 1e3).c_str()));
          break;
        case kStage: {
          StageRow s;
          s.label = FieldStr(line, "label");
          s.key = FieldStr(line, "key");
          s.count = FieldNum(line, "count");
          s.p50 = FieldNum(line, "p50");
          s.p99 = FieldNum(line, "p99");
          stages.push_back(std::move(s));
          break;
        }
        case kCounters: {
          CounterRow c;
          c.label = FieldStr(line, "label");
          c.value = FieldNum(line, "value");
          if (SplitKey(FieldStr(line, "key"), &c)) {
            counters.push_back(std::move(c));
          }
          break;
        }
        case kNone:
          break;
      }
    }
  }

  std::printf("== %s — %s (git %s)\n", figure.empty() ? path.c_str() : figure.c_str(),
              title.c_str(), git_sha.empty() ? "?" : git_sha.c_str());
  if (!params.empty()) {
    std::printf("   params: %s\n", params.c_str());
  }
  if (!series.empty()) {
    std::printf("-- series --\n");
    for (const std::string& s : series) {
      std::printf("  %s\n", s.c_str());
    }
  }
  if (!latency.empty()) {
    std::printf("-- workload latency --\n");
    for (const std::string& s : latency) {
      std::printf("  %s\n", s.c_str());
    }
  }

  // The top-style view: per run label, per domain, its devices' counters.
  std::map<std::string, std::map<std::string, std::map<std::string, std::string>>> top;
  for (const CounterRow& c : counters) {
    std::string& cell = top[c.label][c.domain][c.device];
    if (!cell.empty()) {
      cell += " ";
    }
    cell += c.name + "=" + HumanCount(c.value);
  }
  for (const auto& [label, domains] : top) {
    std::printf("-- run %s: %zu domain(s) --\n", label.c_str(), domains.size());
    for (const auto& [domain, devices] : domains) {
      std::printf("  %s\n", domain.c_str());
      for (const auto& [device, cell] : devices) {
        std::printf("    %-16s %s\n", device.c_str(), cell.c_str());
      }
    }
    for (const StageRow& s : stages) {
      if (s.label == label) {
        std::printf("  stage %-40s n=%-9s p50=%.1fus p99=%.1fus\n", s.key.c_str(),
                    HumanCount(s.count).c_str(), s.p50 / 1e3, s.p99 / 1e3);
      }
    }
  }
  return 0;
}

// A DumpDiagnostics text file: health, per-shard placement, and invariants
// verbatim (the triage signal), everything else as one-line section sizes.
int InspectDiagnosticsDump(const std::string& path, std::ifstream& in) {
  std::string line, section = "preamble";
  std::map<std::string, std::vector<std::string>> sections;
  while (std::getline(in, line)) {
    if (line.rfind("---- ", 0) == 0) {
      const size_t end = line.find(" ----", 5);
      section = end != std::string::npos ? line.substr(5, end - 5) : line;
      continue;
    }
    if (line.rfind("====", 0) == 0) {
      continue;
    }
    sections[section].push_back(line);
  }
  std::printf("== diagnostics %s\n", path.c_str());
  // Placement comes before health: "which shard serves whom" is the first
  // question a failover triage asks, and each row already carries the
  // per-device verdicts.
  for (const char* verbatim : {"placement", "health", "invariants"}) {
    std::printf("-- %s --\n", verbatim);
    for (const std::string& l : sections[verbatim]) {
      std::printf("%s\n", l.c_str());
    }
  }
  for (const auto& [name, lines] : sections) {
    if (name == "placement" || name == "health" || name == "invariants" ||
        name == "preamble") {
      continue;
    }
    std::printf("-- %s: %zu line(s) (see %s) --\n", name.c_str(), lines.size(),
                path.c_str());
  }
  return 0;
}

int InspectFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kite_inspect: cannot open %s\n", path.c_str());
    return 1;
  }
  // Sniff the format: bench JSON starts with '{'; a DumpDiagnostics file
  // starts with its banner.
  std::string first;
  std::getline(in, first);
  in.seekg(0);
  if (first.rfind('{', 0) == 0) {
    return InspectBenchJson(path, in);
  }
  if (first.rfind("==== KITE DIAGNOSTICS", 0) == 0) {
    return InspectDiagnosticsDump(path, in);
  }
  std::fprintf(stderr,
               "kite_inspect: %s is neither a BENCH_*.json nor a diagnostics dump\n",
               path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <BENCH_*.json | diagnostics-dump.txt> [more files...]\n",
                 argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) {
      std::printf("\n");
    }
    rc |= InspectFile(argv[i]);
  }
  return rc;
}
