#include "src/check/frontends.h"

#include "src/hv/xenbus.h"

namespace kite {

// --- RawNetFrontend. ---

RawNetFrontend::RawNetFrontend(KiteSystem* sys, NetworkDomain* netdom, GuestVm* guest,
                               int devid)
    : sys_(sys),
      netdom_(netdom),
      guest_(guest),
      devid_(devid),
      gid_(guest->domain()->id()),
      bid_(netdom->domain()->id()),
      fe_(FrontendPath(gid_, "vif", devid)) {}

bool RawNetFrontend::Connect() {
  XenStore& store = sys_->hv().store();
  const std::string be = BackendPath(bid_, "vif", gid_, devid_);

  // Toolstack half of AttachVif (no Netfront).
  store.Write(kDom0, fe_ + "/backend", be);
  store.WriteInt(kDom0, fe_ + "/backend-id", bid_);
  store.WriteInt(kDom0, fe_ + "/state", static_cast<int>(XenbusState::kInitialising));
  store.Write(kDom0, be + "/frontend", fe_);
  store.WriteInt(kDom0, be + "/frontend-id", gid_);
  store.WriteInt(kDom0, be + "/state", static_cast<int>(XenbusState::kInitialising));
  store.SetPermission(kDom0, fe_, bid_);
  store.SetPermission(kDom0, be, gid_);

  // Frontend half, by hand: rings, grants, event channel, publication.
  Domain* gd = guest_->domain();
  tx_page_ = AllocPage();
  rx_page_ = AllocPage();
  tx_shared_ = std::make_shared<NetTxSharedRing>(kNetRingSize);
  rx_shared_ = std::make_shared<NetRxSharedRing>(kNetRingSize);
  tx_page_->object = tx_shared_;
  rx_page_->object = rx_shared_;
  tx_ring_ = std::make_unique<NetTxFrontRing>(tx_shared_.get());
  rx_ring_ = std::make_unique<NetRxFrontRing>(rx_shared_.get());
  tx_gref_ = gd->grant_table().GrantAccess(bid_, tx_page_, /*readonly=*/false);
  rx_gref_ = gd->grant_table().GrantAccess(bid_, rx_page_, /*readonly=*/false);
  data_page_ = AllocPage();
  data_gref_ = gd->grant_table().GrantAccess(bid_, data_page_, /*readonly=*/true);
  port_ = sys_->hv().EventAllocUnbound(gd, bid_);
  gd->StoreWriteInt(fe_ + "/tx-ring-ref", tx_gref_);
  gd->StoreWriteInt(fe_ + "/rx-ring-ref", rx_gref_);
  gd->StoreWriteInt(fe_ + "/event-channel", port_);
  gd->StoreWriteInt(fe_ + "/request-rx-copy", 1);
  XenbusClient bus(&store, gid_);
  bus.SwitchState(fe_, XenbusState::kInitialised);

  return sys_->WaitUntil([this] { return vif() != nullptr && vif()->connected(); });
}

NetbackInstance* RawNetFrontend::vif() const {
  return netdom_->driver() != nullptr ? netdom_->driver()->instance(gid_, devid_)
                                      : nullptr;
}

bool RawNetFrontend::SendTx(const NetTxRequest& req) {
  if (tx_ring_->Full()) {
    return false;
  }
  tx_ring_->ProduceRequest(req);
  if (tx_ring_->PushRequests()) {
    sys_->hv().EventSend(guest_->domain(), port_);
  }
  return true;
}

std::vector<NetTxResponse> RawNetFrontend::DrainTxResponses() {
  std::vector<NetTxResponse> rsps;
  do {
    while (tx_ring_->HasUnconsumedResponses()) {
      rsps.push_back(tx_ring_->ConsumeResponse());
    }
  } while (tx_ring_->FinalCheckForResponses());
  return rsps;
}

NetTxRequest RawNetFrontend::ValidTx(uint16_t id) const {
  NetTxRequest req;
  req.gref = data_gref_;
  req.id = id;
  req.offset = 0;
  req.size = 64;
  return req;
}

// --- RawBlkFrontend. ---

RawBlkFrontend::RawBlkFrontend(KiteSystem* sys, StorageDomain* stordom, GuestVm* guest,
                               int devid)
    : sys_(sys),
      stordom_(stordom),
      guest_(guest),
      devid_(devid),
      gid_(guest->domain()->id()),
      bid_(stordom->domain()->id()),
      fe_(FrontendPath(gid_, "vbd", devid)) {}

bool RawBlkFrontend::Connect() {
  XenStore& store = sys_->hv().store();
  const std::string be = BackendPath(bid_, "vbd", gid_, devid_);

  // Toolstack half of AttachVbd (no Blkfront).
  store.Write(kDom0, fe_ + "/backend", be);
  store.WriteInt(kDom0, fe_ + "/backend-id", bid_);
  store.Write(kDom0, be + "/frontend", fe_);
  store.WriteInt(kDom0, be + "/frontend-id", gid_);
  store.SetPermission(kDom0, fe_, bid_);
  store.SetPermission(kDom0, be, gid_);
  sys_->RunFor(Millis(5));  // Let blkback advertise.

  // Frontend half, by hand.
  Domain* gd = guest_->domain();
  ring_page_ = AllocPage();
  shared_ = std::make_shared<BlkSharedRing>(kBlkRingSize);
  ring_page_->object = shared_;
  ring_ = std::make_unique<BlkFrontRing>(shared_.get());
  ring_gref_ = gd->grant_table().GrantAccess(bid_, ring_page_, /*readonly=*/false);
  data_page_ = AllocPage();
  data_gref_ = gd->grant_table().GrantAccess(bid_, data_page_, /*readonly=*/false);
  port_ = sys_->hv().EventAllocUnbound(gd, bid_);
  gd->StoreWriteInt(fe_ + "/ring-ref", ring_gref_);
  gd->StoreWriteInt(fe_ + "/event-channel", port_);
  gd->StoreWriteInt(fe_ + "/feature-persistent", 0);
  XenbusClient bus(&store, gid_);
  bus.SwitchState(fe_, XenbusState::kInitialised);

  return sys_->WaitUntil([this] { return vbd() != nullptr && vbd()->connected(); });
}

BlkbackInstance* RawBlkFrontend::vbd() const {
  return stordom_->driver() != nullptr ? stordom_->driver()->instance(gid_, devid_)
                                       : nullptr;
}

uint64_t RawBlkFrontend::capacity_sectors() const {
  return static_cast<uint64_t>(stordom_->disk()->capacity_bytes()) / kSectorSize;
}

bool RawBlkFrontend::SendBlk(const BlkRequest& req) {
  if (ring_->Full()) {
    return false;
  }
  ring_->ProduceRequest(req);
  if (ring_->PushRequests()) {
    sys_->hv().EventSend(guest_->domain(), port_);
  }
  return true;
}

std::vector<BlkResponse> RawBlkFrontend::DrainResponses() {
  std::vector<BlkResponse> rsps;
  do {
    while (ring_->HasUnconsumedResponses()) {
      rsps.push_back(ring_->ConsumeResponse());
    }
  } while (ring_->FinalCheckForResponses());
  return rsps;
}

BlkRequest RawBlkFrontend::ValidRead(uint64_t id) const {
  BlkRequest req;
  req.op = BlkOp::kRead;
  req.id = id;
  req.sector_number = 0;
  req.nr_segments = 1;
  req.segments[0] = {data_gref_, 0, 7};
  return req;
}

}  // namespace kite
