// kite_explore: seeded whole-system schedule exploration.
//
//   kite_explore --seeds=50        sweep seeds 1..50 (CI per-PR budget)
//   kite_explore --seed=17         replay one seed exactly
//   kite_explore --seed=17 --verbose   ... with per-phase progress
//   kite_explore --failover --seeds=10 sweep the sharded-failover scenario
//
// Exit status is 0 only if every seed passes. Each seed is announced on
// stdout *before* its run starts, so even a KITE_CHECK abort mid-seed
// leaves the replay command in the captured output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/check/explore.h"

namespace {

bool ParseU64Flag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + len + 1, &end, 10);
  if (end == arg + len + 1 || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: %s\n", name, arg + len + 1);
    std::exit(2);
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t first_seed = 1;
  uint64_t num_seeds = 0;  // 0: single --seed run.
  bool verbose = false;
  bool failover = false;
  kite::HealthParams health;
  std::string stall_demo_path;
  for (int i = 1; i < argc; ++i) {
    uint64_t v = 0;
    if (ParseU64Flag(argv[i], "--seed", &v)) {
      first_seed = v;
    } else if (ParseU64Flag(argv[i], "--seeds", &v)) {
      num_seeds = v;
    } else if (ParseU64Flag(argv[i], "--probe-us", &v)) {
      health.probe_period = kite::Micros(static_cast<int64_t>(v));
    } else if (ParseU64Flag(argv[i], "--degraded-us", &v)) {
      health.degraded_after = kite::Micros(static_cast<int64_t>(v));
    } else if (ParseU64Flag(argv[i], "--stalled-us", &v)) {
      health.stalled_after = kite::Micros(static_cast<int64_t>(v));
    } else if (std::strncmp(argv[i], "--stall-demo=", 13) == 0) {
      stall_demo_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--failover") == 0) {
      failover = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=S | --seeds=N] [--verbose] [--failover]\n"
                   "          [--probe-us=U] [--degraded-us=U] [--stalled-us=U]\n"
                   "          [--stall-demo=PATH]\n"
                   "  --seed=S          run (replay) exactly seed S\n"
                   "  --seeds=N         sweep seeds 1..N\n"
                   "  --failover        sweep the sharded Rebalancer failover\n"
                   "                    scenario instead of the base lifecycle\n"
                   "  --probe-us=U      watchdog probe period (microseconds)\n"
                   "  --degraded-us=U   watchdog degraded threshold\n"
                   "  --stalled-us=U    watchdog stalled threshold\n"
                   "  --stall-demo=PATH wedge both backends, dump diagnostics to\n"
                   "                    PATH, recover, and verify (no seed sweep)\n",
                   argv[0]);
      return 2;
    }
  }
  if (!stall_demo_path.empty()) {
    return kite::RunStallDemo(stall_demo_path) ? 0 : 1;
  }
  const uint64_t last_seed = num_seeds > 0 ? num_seeds : first_seed;
  if (num_seeds > 0) {
    first_seed = 1;
  }

  int failures = 0;
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    // Announce before running: an abort inside the run still leaves the
    // replay command in the log.
    std::printf("[kite_explore] seed %llu starting (replay: kite_explore%s --seed=%llu --verbose)\n",
                static_cast<unsigned long long>(seed), failover ? " --failover" : "",
                static_cast<unsigned long long>(seed));
    std::fflush(stdout);
    kite::ExploreOptions opts;
    opts.seed = seed;
    opts.verbose = verbose;
    opts.health = health;
    const kite::ExploreReport report =
        failover ? kite::RunFailoverSeed(opts) : kite::RunExploreSeed(opts);
    std::fputs(kite::FormatReport(report).c_str(), stdout);
    std::fflush(stdout);
    if (!report.ok) {
      ++failures;
    }
  }
  if (failures > 0) {
    std::printf("[kite_explore] %d of %llu seed(s) FAILED\n", failures,
                static_cast<unsigned long long>(last_seed - first_seed + 1));
    return 1;
  }
  std::printf("[kite_explore] all %llu seed(s) passed\n",
              static_cast<unsigned long long>(last_seed - first_seed + 1));
  return 0;
}
