// Structure-aware protocol fuzzer for the netif/blkif rings.
//
// Random bytes almost never exercise interesting backend paths: a request
// must be *mostly* valid to get past the first shape check and reach the
// deeper ones. So the fuzzer starts from a known-good request and applies
// protocol-shaped mutations — single-bit flips in guest-controlled fields,
// field swaps, truncations, bogus/duplicated grant references, boundary
// offsets — and leaves a fraction of the stream untouched so validation and
// service paths interleave. All randomness comes from one seeded Rng: the
// stream a seed produces is exactly reproducible.
#ifndef SRC_CHECK_FUZZ_H_
#define SRC_CHECK_FUZZ_H_

#include "src/base/rng.h"
#include "src/blk/blkif.h"
#include "src/net/frame.h"
#include "src/netdrv/netif_ring.h"

namespace kite {

class ProtocolFuzzer {
 public:
  explicit ProtocolFuzzer(uint64_t seed) : rng_(seed) {}

  // Returns `valid` with zero or more mutations applied. ~1 in 4 requests
  // pass through unmutated.
  NetTxRequest MutateNetTx(NetTxRequest valid);
  // `capacity_sectors` lets the fuzzer aim at the exact end-of-disk
  // boundary, where off-by-one capacity checks live.
  BlkRequest MutateBlk(BlkRequest valid, uint64_t capacity_sectors);
  // TCP segment mutations: flag-combination corruption, near-miss and
  // far-off seq/ack perturbations (the near ones probe the window-edge
  // acceptance checks), window collapse, and payload truncation.
  TcpSegment MutateTcp(TcpSegment valid);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace kite

#endif  // SRC_CHECK_FUZZ_H_
