#include "src/netdrv/netfront.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/obs/flow.h"

namespace kite {

Netfront::Netfront(Domain* guest, DomId backend_dom, int devid, MacAddr mac,
                   std::function<void()> on_connected)
    : NetIf(StrFormat("xn%d", devid), mac),
      guest_(guest),
      hv_(guest->hypervisor()),
      backend_dom_(backend_dom),
      devid_(devid),
      on_connected_(std::move(on_connected)) {
  frontend_path_ = FrontendPath(guest->id(), "vif", devid);
  backend_path_ = BackendPath(backend_dom, "vif", guest->id(), devid);
  MetricRegistry* reg = hv_->metrics();
  tx_dropped_ = reg->counter(guest->name(), ifname(), "tx_dropped");
  rx_errors_ = reg->counter(guest->name(), ifname(), "rx_errors");
  recoveries_ = reg->counter(guest->name(), ifname(), "recoveries");
  recovery_drops_ = reg->counter(guest->name(), ifname(), "recovery_drops");
  rx_bad_responses_ = reg->counter(guest->name(), ifname(), "rx_bad_response");
  tx_complete_ns_ = reg->latency(guest->name(), ifname(), "tx_complete_ns");
  PublishAndInitialise();
  // Watch our own backend-id link: the toolstack rewrites it when it hands
  // this device to a replacement backend domain after a crash. The
  // registration fire reads the current id and is a no-op.
  relink_watch_ = guest_->StoreWatch(frontend_path_ + "/backend-id", "relink",
                                     [this](const std::string&, const std::string&) {
                                       OnToolstackRelink();
                                     });
}

Netfront::~Netfront() {
  *alive_ = false;
  if (backend_watch_ != 0) {
    hv_->store().RemoveWatch(backend_watch_);
  }
  if (relink_watch_ != 0) {
    hv_->store().RemoveWatch(relink_watch_);
  }
}

void Netfront::PublishAndInitialise() {
  // Allocate rings in shared pages and attach the ring objects to them.
  tx_ring_page_ = AllocPage();
  rx_ring_page_ = AllocPage();
  tx_shared_ = std::make_shared<NetTxSharedRing>(kNetRingSize);
  rx_shared_ = std::make_shared<NetRxSharedRing>(kNetRingSize);
  tx_ring_page_->object = tx_shared_;
  rx_ring_page_->object = rx_shared_;
  tx_ring_ = std::make_unique<NetTxFrontRing>(tx_shared_.get());
  rx_ring_ = std::make_unique<NetRxFrontRing>(rx_shared_.get());
  tx_ring_gref_ = guest_->grant_table().GrantAccess(backend_dom_, tx_ring_page_, false);
  rx_ring_gref_ = guest_->grant_table().GrantAccess(backend_dom_, rx_ring_page_, false);

  // Data pools: tx pages are granted read-only (backend copies out of them);
  // rx pages writable (backend copies into them).
  tx_slots_.resize(kNetRingSize);
  rx_slots_.resize(kNetRingSize);
  for (uint16_t i = 0; i < kNetRingSize; ++i) {
    tx_slots_[i].page = AllocPage();
    tx_slots_[i].gref =
        guest_->grant_table().GrantAccess(backend_dom_, tx_slots_[i].page, true);
    tx_free_ids_.push_back(i);
    rx_slots_[i].page = AllocPage();
    rx_slots_[i].gref =
        guest_->grant_table().GrantAccess(backend_dom_, rx_slots_[i].page, false);
    rx_free_ids_.push_back(i);
  }

  // Event channel: allocate unbound for the backend to bind.
  port_ = hv_->EventAllocUnbound(guest_, backend_dom_);
  hv_->EventSetHandler(guest_, port_, [this] { OnIrq(); });

  // Publish connection parameters (paper §4.2 "Initialization").
  guest_->StoreWriteInt(frontend_path_ + "/tx-ring-ref", tx_ring_gref_);
  guest_->StoreWriteInt(frontend_path_ + "/rx-ring-ref", rx_ring_gref_);
  guest_->StoreWriteInt(frontend_path_ + "/event-channel", port_);
  guest_->StoreWrite(frontend_path_ + "/mac", mac().ToString());
  guest_->StoreWriteInt(frontend_path_ + "/request-rx-copy", 1);

  // Pre-post the full Rx ring so the backend can deliver immediately.
  PostRxBuffers();

  XenbusClient bus(&hv_->store(), guest_->id());
  bus.SwitchState(frontend_path_, XenbusState::kInitialised);

  // Watch the backend's state; Connected completes the handshake.
  backend_watch_ = guest_->StoreWatch(backend_path_ + "/state", "backend-state",
                                      [this](const std::string&, const std::string&) {
                                        OnBackendStateChange();
                                      });
  published_ = true;
}

void Netfront::OnBackendStateChange() {
  XenbusClient bus(&hv_->store(), guest_->id());
  XenbusState state = bus.ReadState(backend_path_);
  if (state == XenbusState::kInitWait || state == XenbusState::kInitialised ||
      state == XenbusState::kConnected) {
    backend_was_live_ = true;
  }
  if (state == XenbusState::kConnected && !connected_) {
    connected_ = true;
    bus.SwitchState(frontend_path_, XenbusState::kConnected);
    SetUp(true);
    if (on_connected_) {
      on_connected_();
    }
  }
  // Backend death: an explicit Closing/Closed transition, or its state node
  // vanishing after it had been live (domain destruction removes the
  // subtree; the watch fires but the read sees nothing).
  const bool gone = state == XenbusState::kUnknown && backend_was_live_ &&
                    !hv_->store().Exists(backend_path_ + "/state");
  if (state == XenbusState::kClosing || state == XenbusState::kClosed || gone) {
    HandleBackendDeath();
  }
}

void Netfront::HandleBackendDeath() {
  if (!published_) {
    return;
  }
  published_ = false;
  connected_ = false;
  backend_was_live_ = false;
  SetUp(false);
  XenbusClient bus(&hv_->store(), guest_->id());
  bus.SwitchState(frontend_path_, XenbusState::kClosed);
  // In-flight tx frames die with the backend — acceptable for a NIC (the
  // wire can always lose frames; transport protocols retransmit).
  for (const Slot& slot : tx_slots_) {
    if (slot.in_use) {
      recovery_drops_->Inc();
    }
  }
  // Reclaim every granted page. EndAccess succeeds because DestroyDomain
  // force-dropped the dead backend's mappings.
  for (Slot& slot : tx_slots_) {
    guest_->grant_table().EndAccess(slot.gref);
  }
  for (Slot& slot : rx_slots_) {
    guest_->grant_table().EndAccess(slot.gref);
  }
  guest_->grant_table().EndAccess(tx_ring_gref_);
  guest_->grant_table().EndAccess(rx_ring_gref_);
  tx_ring_gref_ = kInvalidGrantRef;
  rx_ring_gref_ = kInvalidGrantRef;
  tx_slots_.clear();
  rx_slots_.clear();
  tx_free_ids_.clear();
  rx_free_ids_.clear();
  tx_ring_.reset();
  rx_ring_.reset();
  tx_shared_.reset();
  rx_shared_.reset();
  tx_ring_page_.reset();
  rx_ring_page_.reset();
  hv_->EventClose(guest_, port_);
  port_ = kInvalidPort;
  if (backend_watch_ != 0) {
    hv_->store().RemoveWatch(backend_watch_);
    backend_watch_ = 0;
  }
}

void Netfront::OnToolstackRelink() {
  auto id = guest_->StoreReadInt(frontend_path_ + "/backend-id");
  if (!id.has_value()) {
    if (!hv_->store().Exists(frontend_path_ + "/backend-id")) {
      return;  // No toolstack link yet; the watch fires again when written.
    }
    // The key exists but the read failed (fault injection): a missed relink
    // would strand the guest, so retry until the write is visible.
    hv_->executor()->PostAfter(Millis(1), KITE_POST_SITE("netfront/relink-retry"),
                               [this, alive = alive_] {
      if (*alive) {
        OnToolstackRelink();
      }
    });
    return;
  }
  if (static_cast<DomId>(*id) == backend_dom_) {
    return;  // Registration fire, or a rewrite of the same link.
  }
  HandleBackendDeath();  // No-op if the death watch already cleaned up.
  backend_dom_ = static_cast<DomId>(*id);
  backend_path_ = BackendPath(backend_dom_, "vif", guest_->id(), devid_);
  recoveries_->Inc();
  PublishAndInitialise();
}

void Netfront::PostRxBuffers() {
  bool posted = false;
  while (!rx_free_ids_.empty() && !rx_ring_->Full()) {
    uint16_t id = rx_free_ids_.back();
    rx_free_ids_.pop_back();
    rx_slots_[id].in_use = true;
    NetRxRequest req;
    req.id = id;
    req.gref = rx_slots_[id].gref;
    rx_ring_->ProduceRequest(req);
    posted = true;
  }
  if (posted && rx_ring_->PushRequests() && connected_) {
    hv_->EventSend(guest_, port_);
  }
}

void Netfront::Output(const EthernetFrame& frame) {
  if (!connected_ || tx_free_ids_.empty() || tx_ring_->Full()) {
    tx_dropped_->Inc();
    return;
  }
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("netfront/io"));
    guest_->vcpu(0)->Charge(frame_cost_);
  }
  uint16_t id = tx_free_ids_.back();
  tx_free_ids_.pop_back();
  Slot& slot = tx_slots_[id];
  slot.in_use = true;

  // Serialize into the reusable scratch buffer (Output is synchronous, so
  // one per device suffices) — no per-packet allocation.
  Buffer& bytes = tx_scratch_;
  bytes.clear();
  SerializeEthernetInto(frame, &bytes);
  KITE_CHECK(bytes.size() <= kPageSize) << "frame exceeds page";
  std::copy(bytes.begin(), bytes.end(), slot.page->data.begin());

  const SimTime now = hv_->executor()->Now();
  slot.submit_ns = now.ns();
  const uint32_t ring_index = tx_ring_->req_prod_pvt();
  NetTxRequest req;
  req.gref = slot.gref;
  req.id = id;
  req.offset = 0;
  req.size = static_cast<uint16_t>(bytes.size());
  tx_ring_->ProduceRequest(req, now.ns());
  CountTx(frame);
  if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
    t->FlowBegin(guest_->id(), 0, "net.tx", "tx_submit", now,
                 MakeFlowId(FlowKind::kNetTx, guest_->id(), devid_, ring_index),
                 frame_cost_);
  }
  if (tx_ring_->PushRequests()) {
    hv_->EventSend(guest_, port_);
  }
}

void Netfront::OnIrq() {
  ProcessTxResponses();
  ProcessRxResponses();
}

void Netfront::ProcessTxResponses() {
  const SimTime now = hv_->executor()->Now();
  EventTracer* t = hv_->tracer();
  const bool tracing = t != nullptr && t->enabled();
  do {
    while (tx_ring_->HasUnconsumedResponses()) {
      // The response for request i reuses logical slot i: the response
      // consumer index is the flow id's ring-slot generation.
      const uint32_t ring_index = tx_ring_->rsp_cons();
      NetTxResponse rsp = tx_ring_->ConsumeResponse();
      KITE_CHECK(rsp.id < kNetRingSize);
      if (tx_slots_[rsp.id].in_use) {
        tx_slots_[rsp.id].in_use = false;
        tx_free_ids_.push_back(rsp.id);
        if (now.ns() >= tx_slots_[rsp.id].submit_ns) {
          tx_complete_ns_->Record(
              static_cast<uint64_t>(now.ns() - tx_slots_[rsp.id].submit_ns));
        }
      }
      if (tracing) {
        t->FlowEnd(guest_->id(), 0, "net.tx", "tx_complete", now,
                   MakeFlowId(FlowKind::kNetTx, guest_->id(), devid_, ring_index));
      }
    }
  } while (tx_ring_->FinalCheckForResponses());
}

void Netfront::ProcessRxResponses() {
  const SimTime now = hv_->executor()->Now();
  EventTracer* t = hv_->tracer();
  const bool tracing = t != nullptr && t->enabled();
  do {
    while (rx_ring_->HasUnconsumedResponses()) {
      const uint32_t ring_index = rx_ring_->rsp_cons();
      NetRxResponse rsp = rx_ring_->ConsumeResponse();
      KITE_CHECK(rsp.id < kNetRingSize);
      if (tracing) {
        t->FlowEnd(guest_->id(), 0, "net.rx", "rx_deliver", now,
                   MakeFlowId(FlowKind::kNetRx, guest_->id(), devid_, ring_index),
                   frame_cost_);
      }
      Slot& slot = rx_slots_[rsp.id];
      slot.in_use = false;
      rx_free_ids_.push_back(rsp.id);
      if (rsp.size <= 0) {
        rx_errors_->Inc();
        continue;
      }
      // rsp.offset/rsp.size come from the backend: never parse outside the
      // posted page, even if the backend misbehaves.
      if (static_cast<size_t>(rsp.offset) > kPageSize ||
          static_cast<size_t>(rsp.size) > kPageSize - rsp.offset) {
        rx_bad_responses_->Inc();
        rx_errors_->Inc();
        continue;
      }
      {
        CpuScope cpu_scope(KITE_CPU_CATEGORY("netfront/io"));
        guest_->vcpu(0)->Charge(frame_cost_);
      }
      auto frame = ParseEthernet(std::span<const uint8_t>(
          slot.page->data.data() + rsp.offset, static_cast<size_t>(rsp.size)));
      if (!frame.has_value()) {
        rx_errors_->Inc();
        continue;
      }
      DeliverInput(*frame);
    }
  } while (rx_ring_->FinalCheckForResponses());
  // Refill the Rx ring with the freed buffers.
  PostRxBuffers();
}

}  // namespace kite
