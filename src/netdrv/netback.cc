#include "src/netdrv/netback.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/obs/flow.h"

namespace kite {

// --- NetbackInstance. ---

NetbackInstance::NetbackInstance(Domain* backend, BmkSched* sched,
                                 const OsCostProfile* costs, NetbackParams params,
                                 DomId frontend_dom, int devid)
    : NetIf(StrFormat("vif%d.%d", frontend_dom, devid),
            MacAddr::FromId(0xba0000u | static_cast<uint32_t>(frontend_dom) << 8 |
                            static_cast<uint32_t>(devid))),
      backend_(backend),
      hv_(backend->hypervisor()),
      sched_(sched),
      costs_(costs),
      params_(params),
      frontend_dom_(frontend_dom),
      devid_(devid),
      tx_wake_(sched->executor()),
      rx_wake_(sched->executor()) {
  backend_path_ = BackendPath(backend->id(), "vif", frontend_dom, devid);
  frontend_path_ = FrontendPath(frontend_dom, "vif", devid);
  MetricRegistry* reg = hv_->metrics();
  guest_tx_frames_ = reg->counter(backend->name(), ifname(), "guest_tx_frames");
  guest_rx_frames_ = reg->counter(backend->name(), ifname(), "guest_rx_frames");
  rx_queue_drops_ = reg->counter(backend->name(), ifname(), "rx_queue_drops");
  tx_bad_requests_ = reg->counter(backend->name(), ifname(), "tx_bad_request");
  rx_copy_fails_ = reg->counter(backend->name(), ifname(), "rx_copy_fail");
  tx_copy_fails_ = reg->counter(backend->name(), ifname(), "tx_copy_fail");
  tx_unparseable_ = reg->counter(backend->name(), ifname(), "tx_unparseable");
  tx_queue_ns_ = reg->latency(backend->name(), ifname(), "tx_queue_ns");
  tx_service_ns_ = reg->latency(backend->name(), ifname(), "tx_service_ns");
  rx_queue_ns_ = reg->latency(backend->name(), ifname(), "rx_queue_ns");
  rx_service_ns_ = reg->latency(backend->name(), ifname(), "rx_service_ns");
  // Registry counters outlive instances (same key after a driver-domain
  // restart); ring indices do not. Baselines make the per-instance
  // conservation audit exact across restarts.
  tx_frames_base_ = guest_tx_frames_->value();
  tx_bad_base_ = tx_bad_requests_->value();
  tx_copy_fail_base_ = tx_copy_fails_->value();
  tx_unparseable_base_ = tx_unparseable_->value();
}

bool NetbackInstance::TxConservationHolds(std::string* detail) const {
  if (tx_ring_ == nullptr) {
    return true;  // Never connected: nothing consumed.
  }
  const uint64_t consumed = tx_ring_->req_cons();
  const uint64_t frames = guest_tx_frames_->value() - tx_frames_base_;
  const uint64_t bad = tx_bad_requests_->value() - tx_bad_base_;
  const uint64_t copy_fail = tx_copy_fails_->value() - tx_copy_fail_base_;
  const uint64_t unparseable = tx_unparseable_->value() - tx_unparseable_base_;
  if (consumed == frames + bad + copy_fail + unparseable) {
    return true;
  }
  if (detail != nullptr) {
    *detail = StrFormat(
        "%s: consumed %llu tx request(s) but resolved %llu "
        "(delivered=%llu bad=%llu copy_fail=%llu unparseable=%llu)",
        ifname().c_str(), static_cast<unsigned long long>(consumed),
        static_cast<unsigned long long>(frames + bad + copy_fail + unparseable),
        static_cast<unsigned long long>(frames), static_cast<unsigned long long>(bad),
        static_cast<unsigned long long>(copy_fail),
        static_cast<unsigned long long>(unparseable));
  }
  return false;
}

uint64_t NetbackInstance::tx_requests_consumed() const {
  return tx_ring_ != nullptr ? tx_ring_->req_cons() : 0;
}

bool NetbackInstance::RingsQuiescent(std::string* detail) const {
  if (tx_ring_ == nullptr || rx_ring_ == nullptr) {
    return true;  // Never connected: nothing to audit.
  }
  if (tx_ring_->UnconsumedRequests() != 0) {
    if (detail != nullptr) {
      *detail = StrFormat("%s: %u unconsumed tx request(s)", ifname().c_str(),
                          tx_ring_->UnconsumedRequests());
    }
    return false;
  }
  if (tx_ring_->rsp_prod_pvt() != tx_ring_->req_cons()) {
    if (detail != nullptr) {
      *detail = StrFormat("%s: consumed %u tx request(s) but produced %u response(s)",
                          ifname().c_str(), tx_ring_->req_cons(),
                          tx_ring_->rsp_prod_pvt());
    }
    return false;
  }
  if (tx_ring_->unpushed_responses() != 0) {
    if (detail != nullptr) {
      *detail = StrFormat("%s: %u unpushed tx response(s)", ifname().c_str(),
                          tx_ring_->unpushed_responses());
    }
    return false;
  }
  // Rx: posted guest buffers may legitimately sit unconsumed, but every
  // consumed buffer must have produced a pushed response.
  if (rx_ring_->rsp_prod_pvt() != rx_ring_->req_cons()) {
    if (detail != nullptr) {
      *detail = StrFormat("%s: consumed %u rx buffer(s) but produced %u response(s)",
                          ifname().c_str(), rx_ring_->req_cons(),
                          rx_ring_->rsp_prod_pvt());
    }
    return false;
  }
  if (rx_ring_->unpushed_responses() != 0) {
    if (detail != nullptr) {
      *detail = StrFormat("%s: %u unpushed rx response(s)", ifname().c_str(),
                          rx_ring_->unpushed_responses());
    }
    return false;
  }
  return true;
}

NetbackInstance::~NetbackInstance() {
  // Normally BeginShutdown already unregistered; the driver-destructor path
  // tears instances down without it, and a stale sampler would dangle.
  if (health_id_ != 0 && hv_->health() != nullptr) {
    hv_->health()->Unregister(health_id_);
    health_id_ = 0;
  }
  if (port_ != kInvalidPort) {
    hv_->EventClose(backend_, port_);
  }
}

void NetbackInstance::CompleteHotplug() {
  XenbusClient bus(&hv_->store(), backend_->id());
  bus.SwitchState(backend_path_, XenbusState::kConnected);
}

bool NetbackInstance::Connect() {
  auto tx_ref = backend_->StoreReadInt(frontend_path_ + "/tx-ring-ref");
  auto rx_ref = backend_->StoreReadInt(frontend_path_ + "/rx-ring-ref");
  auto evt = backend_->StoreReadInt(frontend_path_ + "/event-channel");
  auto rx_copy = backend_->StoreReadInt(frontend_path_ + "/request-rx-copy");
  if (!tx_ref || !rx_ref || !evt) {
    return false;
  }
  if (params_.use_hv_copy && (!rx_copy || *rx_copy != 1)) {
    KITE_LOG(Warning) << ifname() << ": frontend does not support rx-copy";
  }

  tx_ring_map_ = hv_->GrantMap(backend_, frontend_dom_, static_cast<GrantRef>(*tx_ref),
                               /*write_access=*/true);
  rx_ring_map_ = hv_->GrantMap(backend_, frontend_dom_, static_cast<GrantRef>(*rx_ref),
                               /*write_access=*/true);
  if (!tx_ring_map_.valid() || !rx_ring_map_.valid()) {
    return false;
  }
  auto* tx_shared = tx_ring_map_.page()->As<NetTxSharedRing>();
  auto* rx_shared = rx_ring_map_.page()->As<NetRxSharedRing>();
  if (tx_shared == nullptr || rx_shared == nullptr) {
    return false;
  }
  tx_ring_ = std::make_unique<NetTxBackRing>(tx_shared);
  rx_ring_ = std::make_unique<NetRxBackRing>(rx_shared);

  port_ = hv_->EventBindInterdomain(backend_, frontend_dom_, static_cast<EvtPort>(*evt));
  if (port_ == kInvalidPort) {
    return false;
  }
  // The handler only wakes the worker threads (paper §3.2): never do
  // hypercall-heavy work in the notification path.
  hv_->EventSetHandler(backend_, port_, [this] {
    tx_wake_.Signal();
    rx_wake_.Signal();
  });

  pusher_last_active_ = soft_start_last_active_ = sched_->executor()->Now();
  threads_running_ = 2;
  sched_->Spawn(ifname() + "-pusher", [this] { return PusherThread(); });
  sched_->Spawn(ifname() + "-soft_start", [this] { return SoftStartThread(); });
  connected_ = true;
  SetUp(true);
  // Watchdog sampler. Pending work is the Tx ring only: Rx buffers posted by
  // the guest legitimately sit unconsumed while no traffic flows toward it,
  // so counting them as "pending" would flag every idle vif as stalled. The
  // Rx side contributes its backlog (frames queued in rx_pending_) and its
  // progress: rsp_prod is the *sum* of both rings' response producers (each
  // is monotonic, so the sum advances iff either side made progress). Under
  // sustained Rx-only traffic the backlog rarely drains to zero at a probe
  // instant, and without the Rx term every busy probe would look stalled.
  if (HealthMonitor* hm = hv_->health(); hm != nullptr) {
    health_id_ = hm->Register(backend_->id(), backend_->name(), ifname(), devid_,
                              [this] {
                                HealthSample s;
                                s.connected = connected_;
                                if (tx_ring_ != nullptr) {
                                  s.req_cons = tx_ring_->req_cons();
                                  s.req_prod = s.req_cons + tx_ring_->UnconsumedRequests();
                                  s.rsp_prod = tx_ring_->rsp_prod_pvt();
                                }
                                if (rx_ring_ != nullptr) {
                                  s.rsp_prod += rx_ring_->rsp_prod_pvt();
                                }
                                s.queue_depth = static_cast<int>(rx_pending_.size());
                                return s;
                              });
  }
  return true;
}

void NetbackInstance::BeginShutdown() {
  if (stopping_) {
    return;
  }
  stopping_ = true;
  connected_ = false;
  SetUp(false);
  rx_pending_.clear();
  // Deregister from the watchdog before the rings go away: a dead frontend's
  // frozen ring must not read as a stall.
  if (health_id_ != 0 && hv_->health() != nullptr) {
    hv_->health()->Unregister(health_id_);
    health_id_ = 0;
  }
  // Close the port now: the dead frontend can't notify us, and we must not
  // notify into its recycled port number.
  if (port_ != kInvalidPort) {
    hv_->EventClose(backend_, port_);
    port_ = kInvalidPort;
  }
  // Wake both threads so they observe stopping_ and exit. Threads parked in
  // Run/Sleep exit at their next timer resumption instead.
  tx_wake_.Signal();
  rx_wake_.Signal();
}

void NetbackInstance::RequestDrain() {
  if (draining_ || stopping_) {
    return;
  }
  draining_ = true;
  // Take the vif out of the bridge's forwarding set and refuse new frames;
  // everything already accepted (rx_pending_, consumed Tx requests) still
  // flushes to completion.
  SetUp(false);
  tx_wake_.Signal();
  rx_wake_.Signal();
}

bool NetbackInstance::ReadyToRetire() const {
  if (!draining_) {
    return false;
  }
  if (tx_ring_ == nullptr || rx_ring_ == nullptr) {
    return true;  // Never connected: nothing mapped, nothing owed.
  }
  // Every consumed request must be responded and pushed; unconsumed Tx
  // requests are unacknowledged and survive the move on the frontend side.
  return tx_ring_->rsp_prod_pvt() == tx_ring_->req_cons() &&
         tx_ring_->unpushed_responses() == 0 && rx_pending_.empty() &&
         rx_ring_->rsp_prod_pvt() == rx_ring_->req_cons() &&
         rx_ring_->unpushed_responses() == 0;
}

void NetbackInstance::RetireGracefully() {
  KITE_CHECK(ReadyToRetire());
  BeginShutdown();
  // Release the ring mappings synchronously, while the frontend is still
  // alive: its EndAccess on the ring grants must find zero active maps, or
  // the refs are deferred forever and the grant ledger leaks.
  tx_ring_.reset();
  rx_ring_.reset();
  tx_ring_map_.Unmap();
  rx_ring_map_.Unmap();
}

void NetbackInstance::ThreadExited() {
  --threads_running_;
  if (threads_running_ == 0 && on_drained_) {
    on_drained_();
  }
}

SimDuration NetbackInstance::WakeLatency(SimTime* last_active) const {
  SimDuration latency =
      params_.dedicated_threads ? costs_->netback_pass_latency : SimDuration(0);
  const SimTime now = sched_->executor()->Now();
  if (now - *last_active > costs_->cold_threshold) {
    latency += costs_->cold_penalty;
  }
  *last_active = now;
  return latency;
}

void NetbackInstance::PushTxResponses() {
  const bool notify = tx_ring_->PushResponses();
  if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
    fr->Record(backend_->id(), FlightKind::kRingPush, devid_,
               tx_ring_->rsp_prod_pvt(), tx_ring_->req_cons());
  }
  if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
    t->Instant(backend_->id(), frontend_dom_, "ring", "tx_push",
               sched_->executor()->Now(), "notify", notify ? 1 : 0);
  }
  if (notify && port_ != kInvalidPort) {
    hv_->EventSend(backend_, port_, sched_->vcpu());
  }
}

void NetbackInstance::PushRxResponses() {
  const bool notify = rx_ring_->PushResponses();
  if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
    fr->Record(backend_->id(), FlightKind::kRingPush, devid_,
               rx_ring_->rsp_prod_pvt(), rx_ring_->req_cons());
  }
  if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
    t->Instant(backend_->id(), frontend_dom_, "ring", "rx_push",
               sched_->executor()->Now(), "notify", notify ? 1 : 0);
  }
  if (notify && port_ != kInvalidPort) {
    hv_->EventSend(backend_, port_, sched_->vcpu());
  }
}

bool NetbackInstance::CopyFromGuest(GrantRef gref, uint16_t offset, std::span<uint8_t> out) {
  // offset/size are guest-controlled ring fields: validate against the page
  // in *both* modes (the hypervisor rejects too, but the map path used to
  // read out of bounds directly).
  if (offset > kPageSize || out.size() > kPageSize - offset) {
    return false;
  }
  if (params_.use_hv_copy) {
    return hv_->GrantCopyFromGranted(backend_, frontend_dom_, gref, offset, out,
                                     sched_->vcpu());
  }
  MappedGrant map = hv_->GrantMap(backend_, frontend_dom_, gref, /*write_access=*/false,
                                  sched_->vcpu());
  if (!map.valid()) {
    return false;
  }
  std::copy_n(map.page()->data.begin() + offset, out.size(), out.begin());
  return true;  // map's destructor unmaps (charging the unmap hypercall).
}

bool NetbackInstance::CopyToGuest(GrantRef gref, std::span<const uint8_t> data) {
  if (data.size() > kPageSize) {
    return false;
  }
  if (params_.use_hv_copy) {
    return hv_->GrantCopyToGranted(backend_, frontend_dom_, gref, 0, data,
                                   sched_->vcpu());
  }
  MappedGrant map = hv_->GrantMap(backend_, frontend_dom_, gref, /*write_access=*/true,
                                  sched_->vcpu());
  if (!map.valid()) {
    return false;
  }
  std::copy(data.begin(), data.end(), map.page()->data.begin());
  return true;
}

Task NetbackInstance::PusherThread() {
  const SimDuration per_packet =
      costs_->netback_per_packet + costs_->syscall_cost * costs_->syscalls_per_packet;
  while (!stopping_) {
    co_await tx_wake_.Wait();
    if (stopping_) {
      break;
    }
    const SimDuration wake_latency = WakeLatency(&pusher_last_active_);
    if (wake_latency > SimDuration(0)) {
      co_await sched_->Sleep(wake_latency);
      if (stopping_) {
        break;
      }
    }
    for (;;) {
      int batch = 0;
      while (!draining_ && tx_ring_->HasUnconsumedRequests()) {
        NetTxRequest req = tx_ring_->ConsumeRequest();
        const uint32_t ring_index = tx_ring_->last_consumed_index();
        const int64_t submit_ns = tx_ring_->last_consumed_stamp_ns();
        const SimTime popped = sched_->executor()->Now();
        if (popped.ns() >= submit_ns) {
          tx_queue_ns_->Record(static_cast<uint64_t>(popped.ns() - submit_ns));
        }
        if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
          t->FlowStep(backend_->id(), frontend_dom_, "net.tx", "tx_pop", popped,
                      MakeFlowId(FlowKind::kNetTx, frontend_dom_, devid_, ring_index),
                      per_packet);
        }
        // req.size/req.offset are guest-controlled: reject out-of-page
        // requests *before* allocating a buffer sized by the guest.
        const bool in_bounds = req.size > 0 && req.offset <= kPageSize &&
                               req.size <= kPageSize - req.offset;
        if (!in_bounds) {
          tx_bad_requests_->Inc();
        }
        // Stage the packet in the per-thread scratch buffer (no per-packet
        // allocation once its capacity reaches one page).
        Buffer& bytes = tx_scratch_;
        bytes.resize(in_bounds ? req.size : 0);
        const bool ok = in_bounds && CopyFromGuest(req.gref, req.offset, bytes);
        if (in_bounds && !ok) {
          tx_copy_fails_->Inc();
        }
        co_await sched_->Run(per_packet, KITE_CPU_CATEGORY("netback/tx"));
        if (stopping_) {
          break;
        }
        NetTxResponse rsp;
        rsp.id = req.id;
        rsp.status = ok ? NetifStatus::kOkay : NetifStatus::kError;
        tx_ring_->ProduceResponse(rsp);
        const SimTime responded = sched_->executor()->Now();
        tx_service_ns_->Record(static_cast<uint64_t>((responded - popped).ns()));
        if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
          t->FlowStep(backend_->id(), frontend_dom_, "net.tx", "tx_rsp", responded,
                      MakeFlowId(FlowKind::kNetTx, frontend_dom_, devid_, ring_index));
        }
        if (ok) {
          auto frame = ParseEthernet(bytes);
          if (frame.has_value()) {
            guest_tx_frames_->Inc();
            // Hand the frame to the network stack/bridge through the VIF.
            DeliverInput(*frame);
          } else {
            tx_unparseable_->Inc();
          }
        }
        if (!params_.dedicated_threads || ++batch >= params_.batch_limit) {
          PushTxResponses();
          batch = 0;
          co_await sched_->Yield();
          if (stopping_) {
            break;
          }
        }
      }
      if (stopping_) {
        break;
      }
      PushTxResponses();
      if (draining_ || !tx_ring_->FinalCheckForRequests()) {
        break;
      }
    }
    pusher_last_active_ = sched_->executor()->Now();
  }
  ThreadExited();
}

void NetbackInstance::Output(const EthernetFrame& frame) {
  if (!connected_ || draining_) {
    return;
  }
  if (rx_policy_->ShouldDrop(rx_pending_.size(), params_.rx_queue_cap,
                             frame.WireBytes())) {
    rx_queue_drops_->Inc();
    return;
  }
  rx_pending_.push_back({frame, sched_->executor()->Now().ns()});
  // The stack callback only wakes soft_start (paper §4.2 "Multiple
  // Threads"); the copy work happens on the thread.
  rx_wake_.Signal();
}

void NetbackInstance::SetRxDropPolicy(std::unique_ptr<DropPolicy> policy) {
  rx_policy_ = policy != nullptr ? std::move(policy)
                                 : std::make_unique<DropTailPolicy>();
}

Task NetbackInstance::SoftStartThread() {
  const SimDuration per_packet =
      costs_->netback_per_packet + costs_->syscall_cost * costs_->syscalls_per_packet;
  while (!stopping_) {
    co_await rx_wake_.Wait();
    if (stopping_) {
      break;
    }
    const SimDuration wake_latency = WakeLatency(&soft_start_last_active_);
    if (wake_latency > SimDuration(0)) {
      co_await sched_->Sleep(wake_latency);
      if (stopping_) {
        break;
      }
    }
    int batch = 0;
    while (!rx_pending_.empty()) {
      if (!rx_ring_->HasUnconsumedRequests() && !rx_ring_->FinalCheckForRequests()) {
        // No posted guest buffers; wait for the frontend to replenish (we
        // will be woken by its notification).
        break;
      }
      NetRxRequest req = rx_ring_->ConsumeRequest();
      const uint32_t ring_index = rx_ring_->last_consumed_index();
      EthernetFrame frame = std::move(rx_pending_.front().frame);
      const int64_t arrival_ns = rx_pending_.front().arrival_ns;
      rx_pending_.pop_front();
      const SimTime picked = sched_->executor()->Now();
      if (picked.ns() >= arrival_ns) {
        rx_queue_ns_->Record(static_cast<uint64_t>(picked.ns() - arrival_ns));
      }
      if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
        t->FlowBegin(backend_->id(), frontend_dom_, "net.rx", "rx_service", picked,
                     MakeFlowId(FlowKind::kNetRx, frontend_dom_, devid_, ring_index),
                     per_packet);
      }
      Buffer& bytes = rx_scratch_;
      bytes.clear();
      SerializeEthernetInto(frame, &bytes);
      KITE_CHECK(bytes.size() <= kPageSize);
      const bool ok = CopyToGuest(req.gref, bytes);
      co_await sched_->Run(per_packet, KITE_CPU_CATEGORY("netback/rx"));
      if (stopping_) {
        break;
      }
      NetRxResponse rsp;
      rsp.id = req.id;
      rsp.offset = 0;
      rsp.size = ok ? static_cast<int32_t>(bytes.size())
                    : static_cast<int32_t>(NetifStatus::kError);
      rx_ring_->ProduceResponse(rsp);
      const SimTime responded = sched_->executor()->Now();
      rx_service_ns_->Record(static_cast<uint64_t>((responded - picked).ns()));
      if (EventTracer* t = hv_->tracer(); t != nullptr && t->enabled()) {
        t->FlowStep(backend_->id(), frontend_dom_, "net.rx", "rx_rsp", responded,
                    MakeFlowId(FlowKind::kNetRx, frontend_dom_, devid_, ring_index));
      }
      if (ok) {
        // Only a successful copy counts as delivered — a failed copy used to
        // inflate both counters (phantom deliveries under grant faults).
        guest_rx_frames_->Inc();
        CountTx(frame);  // VIF "transmitted" toward the guest.
      } else {
        rx_copy_fails_->Inc();
      }
      if (!params_.dedicated_threads || ++batch >= params_.batch_limit) {
        PushRxResponses();
        batch = 0;
        co_await sched_->Yield();
        if (stopping_) {
          break;
        }
      }
    }
    if (stopping_) {
      break;
    }
    PushRxResponses();
    soft_start_last_active_ = sched_->executor()->Now();
  }
  ThreadExited();
}

// --- NetworkBackendDriver. ---

NetworkBackendDriver::NetworkBackendDriver(Domain* backend, std::vector<BmkSched*> scheds,
                                           const OsCostProfile* costs, NetbackParams params)
    : backend_(backend),
      hv_(backend->hypervisor()),
      scheds_(std::move(scheds)),
      costs_(costs),
      params_(params),
      watch_wake_(scheds_.front()->executor()) {
  KITE_CHECK(!scheds_.empty());
  MetricRegistry* reg = hv_->metrics();
  scans_ = reg->counter(backend->name(), "vif-driver", "scans");
  connect_retries_ = reg->counter(backend->name(), "vif-driver", "connect_retries");
  instances_reaped_ = reg->counter(backend->name(), "vif-driver", "instances_reaped");
  instances_retired_ = reg->counter(backend->name(), "vif-driver", "instances_retired");
  const std::string root = StrFormat("/local/domain/%d/backend/vif", backend->id());
  // The watch only wakes the scanning thread (paper §4.1).
  watch_ = backend_->StoreWatch(root, "vif-backend",
                                [this, root](const std::string& path, const std::string&) {
                                  NoteOnlineTouched(root, path);
                                  watch_wake_.Signal();
                                });
  scheds_.front()->Spawn("xenwatch", [this] { return WatchThread(); });
}

NetworkBackendDriver::~NetworkBackendDriver() {
  *alive_ = false;
  if (watch_ != 0) {
    hv_->store().RemoveWatch(watch_);
  }
  for (const auto& [path, id] : fe_watches_) {
    hv_->store().RemoveWatch(id);
  }
  for (const auto& [key, id] : paired_watches_) {
    hv_->store().RemoveWatch(id);
  }
}

NetbackInstance* NetworkBackendDriver::instance(DomId frontend_dom, int devid) {
  auto it = instances_.find({frontend_dom, devid});
  return it == instances_.end() ? nullptr : it->second.get();
}

Task NetworkBackendDriver::WatchThread() {
  for (;;) {
    co_await watch_wake_.Wait();
    // Query xenbus for unpaired frontends.
    co_await scheds_.front()->Run(Micros(5), KITE_CPU_CATEGORY("driver/xenwatch"));
    ScanForFrontends();
  }
}

void NetworkBackendDriver::SweepDying() {
  std::erase_if(dying_, [](const std::unique_ptr<NetbackInstance>& inst) {
    return inst->drained();
  });
}

void NetworkBackendDriver::ReapDeadInstances() {
  XenbusClient bus(&hv_->store(), backend_->id());
  for (auto it = instances_.begin(); it != instances_.end();) {
    const auto key = it->first;
    const std::string fe_path = FrontendPath(key.first, "vif", key.second);
    const XenbusState state = bus.ReadState(fe_path);
    // An instance only exists once its frontend reached Initialised, so a
    // missing state node means the frontend domain was destroyed — not
    // "hasn't published yet".
    const bool vanished =
        state == XenbusState::kUnknown && !hv_->store().Exists(fe_path + "/state");
    if (state != XenbusState::kClosing && state != XenbusState::kClosed && !vanished) {
      ++it;
      continue;
    }
    KITE_LOG(Info) << "netback: frontend for " << it->second->ifname()
                   << " is gone (" << XenbusStateName(state) << "), reaping";
    if (auto wit = paired_watches_.find(key); wit != paired_watches_.end()) {
      hv_->store().RemoveWatch(wit->second);
      paired_watches_.erase(wit);
    }
    if (on_vif_gone_) {
      on_vif_gone_(it->second.get());  // Unbridge before the pointer dies.
    }
    // Drop the backend's device nodes so rescans don't re-watch the corpse.
    hv_->store().RemoveSubtree(kDom0,
                               BackendPath(backend_->id(), "vif", key.first, key.second));
    offline_.erase(key);
    std::unique_ptr<NetbackInstance> inst = std::move(it->second);
    it = instances_.erase(it);
    inst->set_on_drained([alive = alive_, this] {
      if (*alive) {
        watch_wake_.Signal();  // Prompt a sweep once the threads exit.
      }
    });
    inst->BeginShutdown();
    if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
      fr->Record(backend_->id(), FlightKind::kInstanceReaped, key.second,
                 static_cast<uint64_t>(key.first));
    }
    if (!inst->drained()) {
      dying_.push_back(std::move(inst));
    }
    instances_reaped_->Inc();
  }
}

void NetworkBackendDriver::NoteOnlineTouched(const std::string& root,
                                             const std::string& path) {
  // Event-carried state: the root watch tells us *which* node's online key
  // the toolstack touched, so the scan pays a xenstore read only for those
  // rare writes instead of polling every node on every wakeup (polling
  // taxes the no-migration data path — see the blkback twin).
  if (path.size() <= root.size() + 1 || path.compare(0, root.size(), root) != 0) {
    return;
  }
  const std::string rest = path.substr(root.size() + 1);  // <fdom>/<devid>/online
  const size_t a = rest.find('/');
  const size_t b = a == std::string::npos ? std::string::npos : rest.find('/', a + 1);
  if (b == std::string::npos || rest.substr(b + 1) != "online") {
    return;
  }
  const int64_t fdom = ParseDecimal(rest.substr(0, a));
  const int64_t devid = ParseDecimal(rest.substr(a + 1, b - a - 1));
  if (fdom >= 0 && devid >= 0) {
    online_dirty_.insert({static_cast<DomId>(fdom), static_cast<int>(devid)});
  }
}

void NetworkBackendDriver::ProcessDrains() {
  for (const auto& key : online_dirty_) {
    const std::string be_path =
        BackendPath(backend_->id(), "vif", key.first, key.second);
    auto online = backend_->StoreReadInt(be_path + "/online");
    if (online.has_value() && *online == 0) {
      offline_.insert(key);
    } else {
      offline_.erase(key);  // Rewritten to 1, or the node is gone.
    }
  }
  online_dirty_.clear();
  if (offline_.empty()) {
    return;
  }
  bool pending = false;
  for (auto it = instances_.begin(); it != instances_.end();) {
    const auto key = it->first;
    if (offline_.count(key) == 0) {
      ++it;
      continue;
    }
    const std::string be_path =
        BackendPath(backend_->id(), "vif", key.first, key.second);
    NetbackInstance* inst = it->second.get();
    inst->RequestDrain();
    if (!inst->ReadyToRetire()) {
      pending = true;
      ++it;
      continue;
    }
    KITE_LOG(Info) << "netback: " << inst->ifname() << " drained, retiring";
    if (auto wit = paired_watches_.find(key); wit != paired_watches_.end()) {
      hv_->store().RemoveWatch(wit->second);
      paired_watches_.erase(wit);
    }
    if (on_vif_gone_) {
      on_vif_gone_(inst);  // Unbridge before the pointer dies.
    }
    std::unique_ptr<NetbackInstance> owned = std::move(it->second);
    it = instances_.erase(it);
    owned->set_on_drained([alive = alive_, this] {
      if (*alive) {
        watch_wake_.Signal();
      }
    });
    // Mappings must be released before the subtree goes away (the frontend's
    // relink path EndAccesses its ring grants once the node vanishes).
    owned->RetireGracefully();
    hv_->store().RemoveSubtree(kDom0, be_path);
    offline_.erase(key);
    if (FlightRecorder* fr = hv_->recorder(); fr != nullptr) {
      fr->Record(backend_->id(), FlightKind::kInstanceRetired, key.second,
                 static_cast<uint64_t>(key.first));
    }
    if (!owned->drained()) {
      dying_.push_back(std::move(owned));
    }
    instances_retired_->Inc();
  }
  if (pending) {
    // Drain in progress: re-poll shortly (the worker threads make progress
    // on simulated time, not on watch events).
    hv_->executor()->PostAfter(Micros(50), KITE_POST_SITE("netback/drain-poll"),
                               [this, alive = alive_] {
      if (*alive) {
        watch_wake_.Signal();
      }
    });
  }
}

void NetworkBackendDriver::ScanForFrontends() {
  scans_->Inc();
  SweepDying();
  ReapDeadInstances();
  ProcessDrains();
  const std::string root = StrFormat("/local/domain/%d/backend/vif", backend_->id());
  auto fdoms = backend_->StoreList(root);
  if (!fdoms.has_value()) {
    return;
  }
  XenbusClient bus(&hv_->store(), backend_->id());
  for (const std::string& fdom_str : *fdoms) {
    const int64_t fdom = ParseDecimal(fdom_str);
    if (fdom < 0) {
      continue;
    }
    auto devids = backend_->StoreList(root + "/" + fdom_str);
    if (!devids.has_value()) {
      continue;
    }
    for (const std::string& devid_str : *devids) {
      const int64_t devid = ParseDecimal(devid_str);
      if (devid < 0 || instances_.count({static_cast<DomId>(fdom), static_cast<int>(devid)})) {
        continue;
      }
      // A node marked offline is mid-drain/retire: never pair against it —
      // the frontend republishing at this moment is relinking elsewhere.
      // (offline_ was refreshed by ProcessDrains above; no xenstore read.)
      if (offline_.count({static_cast<DomId>(fdom), static_cast<int>(devid)}) != 0) {
        continue;
      }
      // Pair only once the frontend has published its parameters.
      const std::string fe_path =
          FrontendPath(static_cast<DomId>(fdom), "vif", static_cast<int>(devid));
      if (bus.ReadState(fe_path) != XenbusState::kInitialised) {
        // Not published yet: watch the frontend's state so the scan reruns
        // when it advances (avoids a pairing race).
        if (fe_watches_.find(fe_path) == fe_watches_.end()) {
          fe_watches_[fe_path] = backend_->StoreWatch(
              fe_path + "/state", "fe-state",
              [this](const std::string&, const std::string&) { watch_wake_.Signal(); });
        }
        continue;
      }
      // Shard instances across the domain's vCPUs for I/O scaling.
      BmkSched* sched = scheds_[next_sched_++ % scheds_.size()];
      auto inst = std::make_unique<NetbackInstance>(backend_, sched, costs_, params_,
                                                    static_cast<DomId>(fdom),
                                                    static_cast<int>(devid));
      const std::string be_path = BackendPath(backend_->id(), "vif",
                                              static_cast<DomId>(fdom),
                                              static_cast<int>(devid));
      bus.SwitchState(be_path, XenbusState::kInitWait);
      if (!inst->Connect()) {
        // Transient by assumption (e.g. an injected grant-map failure): keep
        // the backend in InitWait and rescan shortly instead of declaring
        // the device dead with kClosed.
        connect_retries_->Inc();
        KITE_LOG(Warning) << "netback: failed to connect " << fe_path << ", retrying";
        hv_->executor()->PostAfter(Millis(1), KITE_POST_SITE("netback/connect-retry"),
                                   [this, alive = alive_] {
          if (*alive) {
            watch_wake_.Signal();
          }
        });
        continue;
      }
      NetbackInstance* raw = inst.get();
      instances_[{static_cast<DomId>(fdom), static_cast<int>(devid)}] = std::move(inst);
      // Paired: the pre-publication frontend-state watch has served its
      // purpose; dropping it here is what keeps the watch table bounded.
      if (auto wit = fe_watches_.find(fe_path); wit != fe_watches_.end()) {
        hv_->store().RemoveWatch(wit->second);
        fe_watches_.erase(wit);
      }
      // Watch the frontend's state for the rest of the pairing's life: if
      // the guest closes the device or its domain is destroyed, the scan
      // must run again to reap this instance.
      paired_watches_[{static_cast<DomId>(fdom), static_cast<int>(devid)}] =
          backend_->StoreWatch(fe_path + "/state", "fe-gone",
                               [this](const std::string&, const std::string&) {
                                 watch_wake_.Signal();
                               });
      // Hotplug gates the Connected switch: with an application attached the
      // vif must be bridged first (the app calls CompleteHotplug after
      // AddIf), otherwise the frontend could start transmitting into a
      // bridge that doesn't forward for it yet.
      if (on_new_vif_) {
        on_new_vif_(raw);
      } else {
        raw->CompleteHotplug();
      }
    }
  }
}

}  // namespace kite
