// Netfront: the paravirtualized network frontend driver in a guest DomU.
//
// Presents a NetIf to the guest's network stack. Allocates the Tx/Rx shared
// rings and data pages, grants them to the backend domain, negotiates over
// xenbus, and then exchanges frames through the rings with event-channel
// notifications (paper §2.2.1, §4.2).
#ifndef SRC_NETDRV_NETFRONT_H_
#define SRC_NETDRV_NETFRONT_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/hv/domain.h"
#include "src/hv/hypervisor.h"
#include "src/hv/xenbus.h"
#include "src/net/netif.h"
#include "src/netdrv/netif_ring.h"

namespace kite {

class Netfront : public NetIf {
 public:
  // The xenstore device directories must already exist (created by the
  // toolstack, see core/system.h). Construction starts the xenbus handshake;
  // `on_connected` fires when the backend reports Connected.
  Netfront(Domain* guest, DomId backend_dom, int devid, MacAddr mac,
           std::function<void()> on_connected = nullptr);
  ~Netfront() override;

  // NetIf: transmit a frame from the guest stack toward the backend.
  void Output(const EthernetFrame& frame) override;

  bool connected() const { return connected_; }
  int devid() const { return devid_; }
  Domain* guest() const { return guest_; }
  DomId backend_dom() const { return backend_dom_; }

  uint64_t tx_dropped() const { return tx_dropped_->value(); }
  uint64_t rx_errors() const { return rx_errors_->value(); }
  // Completed reconnects to a fresh backend after the old one died.
  uint64_t recoveries() const { return recoveries_->value(); }
  // In-flight tx frames discarded on backend death (net drops; TCP retransmits).
  uint64_t recovery_drops() const { return recovery_drops_->value(); }
  // Rx responses whose offset/size fell outside the posted page — a
  // misbehaving or compromised backend (also counted in rx_errors).
  uint64_t rx_bad_responses() const { return rx_bad_responses_->value(); }

  // Per-frame guest-side processing cost (serialize + driver work).
  void set_frame_cost(SimDuration d) { frame_cost_ = d; }

 private:
  void PublishAndInitialise();
  void OnBackendStateChange();
  // Reconnect machinery: releases every resource tied to the dead backend
  // (idempotent), and re-runs the handshake when the toolstack points
  // frontend/backend-id at a fresh one.
  void HandleBackendDeath();
  void OnToolstackRelink();
  void OnIrq();
  void ProcessTxResponses();
  void ProcessRxResponses();
  void PostRxBuffers();

  Domain* guest_;
  Hypervisor* hv_;
  DomId backend_dom_;
  int devid_;
  std::function<void()> on_connected_;
  bool connected_ = false;

  std::string frontend_path_;
  std::string backend_path_;
  WatchId backend_watch_ = 0;
  WatchId relink_watch_ = 0;
  bool published_ = false;
  // Set once the backend shows signs of life; distinguishes "backend died"
  // from "backend not there yet" when the state node is missing.
  bool backend_was_live_ = false;
  // Outlives `this` so posted retries can detect destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Rings (frontend-allocated; shared via ring-page grants).
  PageRef tx_ring_page_;
  PageRef rx_ring_page_;
  std::shared_ptr<NetTxSharedRing> tx_shared_;
  std::shared_ptr<NetRxSharedRing> rx_shared_;
  std::unique_ptr<NetTxFrontRing> tx_ring_;
  std::unique_ptr<NetRxFrontRing> rx_ring_;
  GrantRef tx_ring_gref_ = kInvalidGrantRef;
  GrantRef rx_ring_gref_ = kInvalidGrantRef;

  // Data page pools, one page per ring slot id.
  struct Slot {
    PageRef page;
    GrantRef gref = kInvalidGrantRef;
    bool in_use = false;
    int64_t submit_ns = 0;  // Tx: when the request was produced (observability).
  };
  std::vector<Slot> tx_slots_;
  std::vector<uint16_t> tx_free_ids_;
  std::vector<Slot> rx_slots_;
  std::vector<uint16_t> rx_free_ids_;
  // TX serialization scratch: Output() is synchronous, so one reusable
  // buffer replaces a per-packet allocation.
  Buffer tx_scratch_;

  EvtPort port_ = kInvalidPort;
  SimDuration frame_cost_ = Nanos(400);

  // Registry-backed under (guest domain, xnN, <name>).
  Counter* tx_dropped_;
  Counter* rx_errors_;
  Counter* recoveries_;
  Counter* recovery_drops_;
  Counter* rx_bad_responses_;
  // Submit → tx response consumed, per frame (ns).
  LatencyHistogram* tx_complete_ns_;
};

}  // namespace kite

#endif  // SRC_NETDRV_NETFRONT_H_
