// Netback: the network backend driver in a driver domain (the paper's main
// networking contribution, §3.2/§4.2).
//
// One NetbackInstance exists per connected netfront; it exposes a VIF NetIf
// that the driver domain's bridge forwards through. The instance runs two
// dedicated BMK threads so that neither the event-channel handler nor the
// network-stack callback ever performs expensive hypercall work:
//   - `pusher`     — drains guest Tx requests (guest → world),
//   - `soft_start` — feeds guest Rx responses (world → guest).
// The event handler and the VIF output callback only *wake* these threads.
//
// NetworkBackendDriver implements backend invocation (paper §4.1): a
// dedicated thread woken by a xenstore watch scans for unpaired frontends
// and instantiates backends for them.
#ifndef SRC_NETDRV_NETBACK_H_
#define SRC_NETDRV_NETBACK_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/bmk/sched.h"
#include "src/hv/domain.h"
#include "src/hv/hypervisor.h"
#include "src/hv/xenbus.h"
#include "src/net/netif.h"
#include "src/net/queue.h"
#include "src/netdrv/netif_ring.h"
#include "src/os/profile.h"
#include "src/sim/wait.h"

namespace kite {

struct NetbackParams {
  // Hypervisor-copy data movement (modern netfront/netback default). When
  // false, the backend maps/unmaps the guest page per packet (ablation).
  bool use_hv_copy = true;
  // Dedicated pusher/soft_start threads (Kite's design). When false, work is
  // processed immediately at the event with per-packet response pushes — the
  // naive in-handler structure the paper argues against (ablation).
  bool dedicated_threads = true;
  // Packets processed per CPU quantum before yielding.
  int batch_limit = 64;
  // Backend-side queue toward a guest; overflow drops (observable as UDP
  // loss in the nuttcp benchmark). Per the DropPolicy convention
  // (src/net/queue.h), 0 means unbounded — never drop.
  size_t rx_queue_cap = 512;
};

class NetbackInstance : public NetIf {
 public:
  NetbackInstance(Domain* backend, BmkSched* sched, const OsCostProfile* costs,
                  NetbackParams params, DomId frontend_dom, int devid);
  ~NetbackInstance() override;

  // Reads the frontend's published parameters, maps the rings, binds the
  // event channel, and starts the threads. Returns false if the frontend's
  // entries are missing or invalid.
  bool Connect();

  // NetIf: bridge → guest direction (enqueue for soft_start).
  void Output(const EthernetFrame& frame) override;

  // Replaces the admission policy of the backend-side Rx queue (drop-tail at
  // rx_queue_cap by default). Passing null restores drop-tail.
  void SetRxDropPolicy(std::unique_ptr<DropPolicy> policy);

  // Advertises Connected in xenstore. As on real Xen, where the hotplug
  // script must bridge the vif before the state switch, the network
  // application calls this after AddIf; the frontend therefore never sees
  // Connected while its traffic would still bypass the bridge. Without an
  // application the driver calls it at pairing time.
  void CompleteHotplug();

  // Frontend death (paper §6: guests may crash at any time): stop accepting
  // work, close the event port, and ask the worker threads to exit at their
  // next resumption. The instance must stay allocated until drained() —
  // its coroutine frames are parked in the shared scheduler and would
  // otherwise resume into freed memory.
  void BeginShutdown();
  bool drained() const { return threads_running_ == 0; }
  void set_on_drained(std::function<void()> fn) { on_drained_ = std::move(fn); }

  // Graceful drain (toolstack-initiated migration): stop consuming new Tx
  // requests and stop accepting new bridge frames, but keep flushing work
  // already accepted. Unconsumed Tx requests stay on the ring — they are
  // unacknowledged, so the frontend retransmits them after relink.
  void RequestDrain();
  bool draining() const { return draining_; }
  // True once every consumed request has a pushed response and the Rx
  // backlog is flushed — nothing acknowledged remains only on this side.
  bool ReadyToRetire() const;
  // BeginShutdown plus synchronous release of the ring mappings. Must run
  // *before* the backend's xenstore subtree is removed: the live frontend's
  // EndAccess only succeeds once this side holds no active maps.
  void RetireGracefully();

  DomId frontend_dom() const { return frontend_dom_; }
  int devid() const { return devid_; }
  bool connected() const { return connected_; }

  uint64_t guest_tx_frames() const { return guest_tx_frames_->value(); }
  uint64_t guest_rx_frames() const { return guest_rx_frames_->value(); }
  uint64_t rx_queue_drops() const { return rx_queue_drops_->value(); }
  // Guest Tx requests rejected before any copy because offset/size fell
  // outside the granted page (malformed or malicious ring input).
  uint64_t tx_bad_requests() const { return tx_bad_requests_->value(); }
  // Rx copies toward the guest that failed (bad gref, injected fault).
  uint64_t rx_copy_fails() const { return rx_copy_fails_->value(); }
  // Tx copies from the guest that failed (bad gref, injected fault).
  uint64_t tx_copy_fails() const { return tx_copy_fails_->value(); }
  // In-bounds, copyable Tx payloads that did not parse as an Ethernet frame
  // (acknowledged kOkay — the bytes moved — but never reached the bridge).
  uint64_t tx_unparseable() const { return tx_unparseable_->value(); }
  // Tx ring requests consumed so far. Every consumed request is resolved as
  // exactly one of: delivered to the bridge (guest_tx_frames), shape-rejected
  // (tx_bad_requests), copy-failed (tx_copy_fails), or unparseable
  // (tx_unparseable) — the per-vif conservation law the checker audits.
  uint64_t tx_requests_consumed() const;

  // True when both rings are quiet: every published Tx request consumed, one
  // response per consumed request on both rings, and everything pushed back
  // to the frontend. On false, `detail` (if non-null) says which leg failed.
  bool RingsQuiescent(std::string* detail) const;

  // Audits the per-vif conservation law over *this instance's* lifetime
  // (registry counters are baselined at construction because the same key
  // persists across driver-domain restarts while ring indices reset).
  bool TxConservationHolds(std::string* detail) const;

 private:
  Task PusherThread();
  Task SoftStartThread();
  void ThreadExited();
  // Pass latency (thread scheduling) plus a cold-path penalty after idle.
  SimDuration WakeLatency(SimTime* last_active) const;
  void PushTxResponses();
  void PushRxResponses();
  bool CopyFromGuest(GrantRef gref, uint16_t offset, std::span<uint8_t> out);
  bool CopyToGuest(GrantRef gref, std::span<const uint8_t> data);

  Domain* backend_;
  Hypervisor* hv_;
  BmkSched* sched_;
  const OsCostProfile* costs_;
  NetbackParams params_;
  DomId frontend_dom_;
  int devid_;
  bool connected_ = false;
  // Drain protocol: pusher stops consuming, Output stops accepting.
  bool draining_ = false;
  // Shutdown protocol: checked by the worker threads after every co_await.
  bool stopping_ = false;
  int threads_running_ = 0;
  std::function<void()> on_drained_;

  std::string backend_path_;
  std::string frontend_path_;

  MappedGrant tx_ring_map_;
  MappedGrant rx_ring_map_;
  std::unique_ptr<NetTxBackRing> tx_ring_;
  std::unique_ptr<NetRxBackRing> rx_ring_;
  EvtPort port_ = kInvalidPort;
  // Watchdog registration (0 = never registered / already unregistered).
  int64_t health_id_ = 0;

  WakeFlag tx_wake_;
  WakeFlag rx_wake_;
  // Frames queued toward the guest, with their arrival time so soft_start
  // can account backend-side queueing delay.
  struct PendingRx {
    EthernetFrame frame;
    int64_t arrival_ns;
  };
  std::deque<PendingRx> rx_pending_;
  std::unique_ptr<DropPolicy> rx_policy_ = std::make_unique<DropTailPolicy>();

  // Per-thread scratch buffers (pusher owns tx_scratch_, soft_start owns
  // rx_scratch_): packet bytes are staged here instead of allocating a fresh
  // Buffer per packet. Capacity sticks at the high-water mark (≤ one page).
  Buffer tx_scratch_;
  Buffer rx_scratch_;

  SimTime pusher_last_active_;
  SimTime soft_start_last_active_;

  // Registry-backed under (backend domain, vifX.Y, <name>).
  Counter* guest_tx_frames_;
  Counter* guest_rx_frames_;
  Counter* rx_queue_drops_;
  Counter* tx_bad_requests_;
  Counter* rx_copy_fails_;
  Counter* tx_copy_fails_;
  Counter* tx_unparseable_;
  // Stage latencies (ns): queue = time waiting before the worker thread
  // picked the item up, service = pickup to response produced.
  LatencyHistogram* tx_queue_ns_;
  LatencyHistogram* tx_service_ns_;
  LatencyHistogram* rx_queue_ns_;
  LatencyHistogram* rx_service_ns_;
  // Counter values at construction (see TxConservationHolds).
  uint64_t tx_frames_base_ = 0;
  uint64_t tx_bad_base_ = 0;
  uint64_t tx_copy_fail_base_ = 0;
  uint64_t tx_unparseable_base_ = 0;
};

class NetworkBackendDriver {
 public:
  // One scheduler per driver-domain vCPU; netback instances are sharded
  // round-robin across them (paper 3.1: "several NICs for better I/O
  // scaling since Kite supports multiple cores").
  NetworkBackendDriver(Domain* backend, std::vector<BmkSched*> scheds,
                       const OsCostProfile* costs,
                       NetbackParams params = NetbackParams{});
  ~NetworkBackendDriver();

  // The network application registers this to connect new VIFs to the
  // bridge (paper §4.3).
  void SetOnNewVif(std::function<void(NetbackInstance*)> fn) { on_new_vif_ = std::move(fn); }
  // Called when a vif's frontend died and the instance is being reaped, so
  // the application can unbridge it before the pointer goes away.
  void SetOnVifGone(std::function<void(NetbackInstance*)> fn) { on_vif_gone_ = std::move(fn); }

  int instance_count() const { return static_cast<int>(instances_.size()); }
  // Reaped instances still draining their worker threads.
  int dying_instance_count() const { return static_cast<int>(dying_.size()); }
  NetbackInstance* instance(DomId frontend_dom, int devid);
  // Live instances in deterministic (frontend, devid) order (checker).
  std::vector<NetbackInstance*> live_instances() const {
    std::vector<NetbackInstance*> out;
    out.reserve(instances_.size());
    for (const auto& [key, inst] : instances_) {
      out.push_back(inst.get());
    }
    return out;
  }

  uint64_t scans() const { return scans_->value(); }
  uint64_t connect_retries() const { return connect_retries_->value(); }
  uint64_t instances_reaped() const { return instances_reaped_->value(); }
  // Instances retired via the graceful drain handshake (be/online = 0).
  uint64_t instances_retired() const { return instances_retired_->value(); }
  // Frontend-state watches currently held while waiting for publication
  // (leak accounting: must drop back to zero once everything is paired).
  int pending_fe_watch_count() const { return static_cast<int>(fe_watches_.size()); }
  // Frontend-death watches held for paired instances (one per live instance).
  int paired_fe_watch_count() const { return static_cast<int>(paired_watches_.size()); }

 private:
  Task WatchThread();
  void ScanForFrontends();
  // Tears down instances whose frontend reached Closing/Closed or vanished
  // from xenstore (frontend domain destroyed).
  void ReapDeadInstances();
  // Drives the graceful drain handshake for instances whose backend node
  // carries online = 0 (set by the toolstack before a migration).
  void ProcessDrains();
  // Root-watch helper: records nodes whose online key changed so the next
  // scan reads only those (keeps the no-migration path free of xenstore ops).
  void NoteOnlineTouched(const std::string& root, const std::string& path);
  // Frees reaped instances whose worker threads have exited.
  void SweepDying();

  Domain* backend_;
  Hypervisor* hv_;
  std::vector<BmkSched*> scheds_;
  const OsCostProfile* costs_;
  NetbackParams params_;
  std::function<void(NetbackInstance*)> on_new_vif_;
  std::function<void(NetbackInstance*)> on_vif_gone_;
  size_t next_sched_ = 0;

  WatchId watch_ = 0;
  WakeFlag watch_wake_;
  std::map<std::pair<DomId, int>, std::unique_ptr<NetbackInstance>> instances_;
  // Frontend state paths we watch while waiting for them to publish; each
  // watch is removed as soon as its frontend pairs (they used to accumulate
  // forever).
  std::map<std::string, WatchId> fe_watches_;
  // Post-pairing frontend-death watches, one per live instance (kept apart
  // from fe_watches_, whose emptiness tests assert after pairing).
  std::map<std::pair<DomId, int>, WatchId> paired_watches_;
  // Nodes whose online key the toolstack touched since the last scan
  // (paths carried by the root watch); read — and charged — only for these.
  std::set<std::pair<DomId, int>> online_dirty_;
  // Nodes currently marked online = 0: mid-drain/retire.
  std::set<std::pair<DomId, int>> offline_;
  // Reaped but not yet drained (worker frames still parked in the shared
  // scheduler); swept on scan wakeups.
  std::vector<std::unique_ptr<NetbackInstance>> dying_;
  Counter* scans_;
  Counter* connect_retries_;
  Counter* instances_reaped_;
  Counter* instances_retired_;
  // Outlives `this` so posted retries can detect destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace kite

#endif  // SRC_NETDRV_NETBACK_H_
