// Xen netif ring message formats (public/io/netif.h analogue).
//
// Netfront and netback communicate over two rings: Tx (guest → backend) and
// Rx (backend → guest). Both are allocated by the frontend; each slot
// references a granted page. In rx-copy mode (the modern default, which Kite
// implements — paper §4.2) the backend moves data with hypervisor grant
// copies instead of mapping guest pages.
#ifndef SRC_NETDRV_NETIF_RING_H_
#define SRC_NETDRV_NETIF_RING_H_

#include "src/hv/grant_table.h"
#include "src/hv/ring.h"

namespace kite {

inline constexpr uint32_t kNetRingSize = 256;

enum class NetifStatus : int8_t {
  kOkay = 0,
  kError = -1,
  kDropped = -2,
};

// Guest → backend: "transmit this frame from my granted page".
struct NetTxRequest {
  GrantRef gref = kInvalidGrantRef;
  uint16_t id = 0;
  uint16_t offset = 0;
  uint16_t size = 0;
};

struct NetTxResponse {
  uint16_t id = 0;
  NetifStatus status = NetifStatus::kOkay;
};

// Guest → backend: "here is an empty granted page for received data".
struct NetRxRequest {
  uint16_t id = 0;
  GrantRef gref = kInvalidGrantRef;
};

// Backend → guest: "slot id now holds `size` bytes of frame data".
struct NetRxResponse {
  uint16_t id = 0;
  uint16_t offset = 0;
  int32_t size = 0;  // Negative: NetifStatus error.
};

using NetTxSharedRing = SharedRing<NetTxRequest, NetTxResponse>;
using NetRxSharedRing = SharedRing<NetRxRequest, NetRxResponse>;
using NetTxFrontRing = FrontRing<NetTxRequest, NetTxResponse>;
using NetTxBackRing = BackRing<NetTxRequest, NetTxResponse>;
using NetRxFrontRing = FrontRing<NetRxRequest, NetRxResponse>;
using NetRxBackRing = BackRing<NetRxRequest, NetRxResponse>;

}  // namespace kite

#endif  // SRC_NETDRV_NETIF_RING_H_
