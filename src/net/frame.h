// Network packet structures: Ethernet, ARP, IPv4 (with fragmentation), ICMP,
// UDP, and TCP segments.
//
// The simulation passes *structured* packets on the fast path (no per-hop
// byte serialization), but every layer has a faithful wire encoder/decoder
// (big-endian, real checksums) used by the DHCP protocol implementation,
// by fragmentation, and by the protocol round-trip tests.
#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <map>
#include <memory>
#include <optional>
#include <variant>

#include "src/base/bytes.h"
#include "src/net/addr.h"

namespace kite {

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

inline constexpr uint8_t kIpProtoIcmp = 1;
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

inline constexpr size_t kEthernetHeaderBytes = 14;
inline constexpr size_t kEthernetOverheadBytes = 24;  // Preamble + FCS + inter-frame gap.
inline constexpr size_t kIpv4HeaderBytes = 20;
inline constexpr size_t kUdpHeaderBytes = 8;
inline constexpr size_t kTcpHeaderBytes = 20;
inline constexpr size_t kMtu = 1500;
inline constexpr size_t kTcpMss = kMtu - kIpv4HeaderBytes - kTcpHeaderBytes;

// --- ARP. ---
struct ArpPacket {
  bool is_request = true;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  size_t ByteSize() const { return 28; }
};

// --- ICMP (echo only; all the paper's ping test needs). ---
struct IcmpMessage {
  bool is_echo_request = true;
  uint16_t ident = 0;
  uint16_t sequence = 0;
  Buffer payload;

  size_t ByteSize() const { return 8 + payload.size(); }
};

// --- UDP. ---
struct UdpDatagram {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  Buffer payload;

  size_t ByteSize() const { return kUdpHeaderBytes + payload.size(); }
};

// --- TCP (simplified segment; see src/net/tcp.h for the state machine). ---
struct TcpSegment {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  bool syn = false;
  bool fin = false;
  bool ack_flag = false;
  bool rst = false;
  uint32_t window = 0;
  Buffer payload;

  size_t ByteSize() const { return kTcpHeaderBytes + payload.size(); }
};

// Raw L4 bytes: used for IP fragments (non-first fragments have no parseable
// L4 header) and for protocols the structured path does not model.
struct RawL4 {
  Buffer bytes;
  size_t ByteSize() const { return bytes.size(); }
};

// --- IPv4. ---
struct Ipv4Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  uint8_t proto = 0;
  uint8_t ttl = 64;
  uint16_t id = 0;
  // Fragmentation: byte offset of this fragment's payload within the
  // original datagram; more_frags set on all but the last fragment.
  uint16_t frag_offset = 0;
  bool more_frags = false;

  std::variant<IcmpMessage, UdpDatagram, TcpSegment, RawL4> l4;

  size_t L4Bytes() const;
  size_t ByteSize() const { return kIpv4HeaderBytes + L4Bytes(); }
  bool IsFragment() const { return more_frags || frag_offset != 0; }
};

// --- Ethernet. ---
struct EthernetFrame {
  MacAddr dst;
  MacAddr src;
  uint16_t ethertype = kEtherTypeIpv4;
  std::variant<ArpPacket, Ipv4Packet> payload;

  size_t PayloadBytes() const;
  // Bytes occupied on the wire, including framing overhead and minimum size.
  size_t WireBytes() const;

  const Ipv4Packet* ip() const { return std::get_if<Ipv4Packet>(&payload); }
  Ipv4Packet* ip() { return std::get_if<Ipv4Packet>(&payload); }
  const ArpPacket* arp() const { return std::get_if<ArpPacket>(&payload); }
};

// --- Wire codecs (real encodings with checksums). ---
//
// Each codec has two forms: the `Serialize*` convenience form returning a
// fresh Buffer, and a `Serialize*Into` form that *appends* to an existing
// Buffer (checksum/length fields are patched at their absolute offsets, so
// appending after existing content is safe). The Into forms let per-packet
// hot paths (netback RX copy-in, netfront RX delivery, per-packet TX parse
// staging) reuse one scratch Buffer instead of allocating per packet.

// UDP/IPv4 with pseudo-header checksum.
Buffer SerializeUdp(const UdpDatagram& udp, Ipv4Addr src, Ipv4Addr dst);
void SerializeUdpInto(const UdpDatagram& udp, Ipv4Addr src, Ipv4Addr dst, Buffer* out);
std::optional<UdpDatagram> ParseUdp(std::span<const uint8_t> data, Ipv4Addr src,
                                    Ipv4Addr dst, bool verify_checksum = true);

Buffer SerializeIcmp(const IcmpMessage& icmp);
void SerializeIcmpInto(const IcmpMessage& icmp, Buffer* out);
std::optional<IcmpMessage> ParseIcmp(std::span<const uint8_t> data,
                                     bool verify_checksum = true);

Buffer SerializeTcp(const TcpSegment& tcp, Ipv4Addr src, Ipv4Addr dst);
void SerializeTcpInto(const TcpSegment& tcp, Ipv4Addr src, Ipv4Addr dst, Buffer* out);
std::optional<TcpSegment> ParseTcp(std::span<const uint8_t> data, Ipv4Addr src,
                                   Ipv4Addr dst, bool verify_checksum = true);

// Serializes the full IPv4 packet (header checksum + serialized L4).
Buffer SerializeIpv4(const Ipv4Packet& packet);
void SerializeIpv4Into(const Ipv4Packet& packet, Buffer* out);
std::optional<Ipv4Packet> ParseIpv4(std::span<const uint8_t> data,
                                    bool verify_checksum = true);

Buffer SerializeArp(const ArpPacket& arp);
void SerializeArpInto(const ArpPacket& arp, Buffer* out);
std::optional<ArpPacket> ParseArp(std::span<const uint8_t> data);

// Full Ethernet frame codec.
Buffer SerializeEthernet(const EthernetFrame& frame);
void SerializeEthernetInto(const EthernetFrame& frame, Buffer* out);
std::optional<EthernetFrame> ParseEthernet(std::span<const uint8_t> data);

// --- IP fragmentation. ---

// Splits a packet whose L4 payload exceeds the MTU into fragments (serializes
// the L4 once, then slices). A packet that fits is returned unchanged.
std::vector<Ipv4Packet> FragmentIpv4(const Ipv4Packet& packet, size_t mtu = kMtu);

// Reassembler for incoming fragments. Returns the completed packet (with a
// parsed L4) once all fragments of a datagram have arrived.
class Ipv4Reassembler {
 public:
  std::optional<Ipv4Packet> Add(const Ipv4Packet& fragment);
  size_t pending_count() const { return pending_.size(); }
  // Drops partially reassembled datagrams older than the limit (counted in
  // Add() calls, a proxy for time that avoids a clock dependency).
  void set_max_pending(size_t n) { max_pending_ = n; }

 private:
  struct Key {
    uint32_t src;
    uint32_t dst;
    uint16_t id;
    uint8_t proto;
    auto operator<=>(const Key&) const = default;
  };
  struct Partial {
    Buffer bytes;
    std::vector<bool> have;
    size_t total_len = 0;  // 0 until the last fragment arrives.
    size_t have_bytes = 0;
  };
  std::map<Key, Partial> pending_;
  size_t max_pending_ = 256;
};

}  // namespace kite

#endif  // SRC_NET_FRAME_H_
