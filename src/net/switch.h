// Top-of-rack Ethernet switch: a box of NIC ports tied together by a
// learning bridge.
//
// A single driver domain talks to the client over a direct cable
// (Nic::ConnectBackToBack) — the paper's testbed. Sharding guest VIFs over
// K netback domains needs K server-side uplinks, so KiteSystem inserts an
// EtherSwitch the moment the second network domain appears: the direct cable
// is unplugged and every endpoint (client NIC plus each domain's passthrough
// NIC) is cabled into its own switch port. Single-domain topologies never
// pay for the hop, keeping the paper-figure benches byte-identical.
//
// Ports are real Nic instances (line-rate serialization, bounded queues,
// propagation delay), so a switched path costs one extra store-and-forward
// hop — exactly what a physical ToR adds. Forwarding burns no vCPU: the
// switch fabric is hardware, not a domain.
#ifndef SRC_NET_SWITCH_H_
#define SRC_NET_SWITCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/bridge.h"
#include "src/net/nic.h"
#include "src/sim/executor.h"

namespace kite {

class EtherSwitch {
 public:
  EtherSwitch(Executor* executor, std::string name, NicParams port_params = NicParams{});

  EtherSwitch(const EtherSwitch&) = delete;
  EtherSwitch& operator=(const EtherSwitch&) = delete;

  // Cables `endpoint` into a fresh switch port. The endpoint must be
  // unpeered (Nic::Disconnect it first if it was direct-cabled).
  void Plug(Nic* endpoint);

  // Unplugs the cable between `endpoint` and its switch port. The port
  // itself stays (dark) — ports are cheap and keep indices stable.
  void Unplug(Nic* endpoint);

  int port_count() const { return static_cast<int>(ports_.size()); }
  Bridge* bridge() { return &bridge_; }

 private:
  Executor* executor_;
  std::string name_;
  NicParams port_params_;
  Bridge bridge_;
  std::vector<std::unique_ptr<Nic>> ports_;
};

}  // namespace kite

#endif  // SRC_NET_SWITCH_H_
