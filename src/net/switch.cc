#include "src/net/switch.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

EtherSwitch::EtherSwitch(Executor* executor, std::string name, NicParams port_params)
    : executor_(executor),
      name_(std::move(name)),
      port_params_(port_params),
      bridge_(name_ + ":fabric", /*vcpu=*/nullptr, /*forward_cost=*/Nanos(0)) {}

void EtherSwitch::Plug(Nic* endpoint) {
  KITE_CHECK(endpoint != nullptr);
  KITE_CHECK(endpoint->peer() == nullptr)
      << "endpoint still cabled; Nic::Disconnect it before plugging";
  const int n = port_count();
  auto port = std::make_unique<Nic>(
      executor_, StrFormat("%s:port%d", name_.c_str(), n),
      StrFormat("%s-p%d", name_.c_str(), n),
      MacAddr::FromId(0x400000u + static_cast<uint32_t>(n)), port_params_);
  port->netif()->SetUp(true);
  bridge_.AddIf(port->netif());
  Nic::ConnectBackToBack(port.get(), endpoint);
  ports_.push_back(std::move(port));
}

void EtherSwitch::Unplug(Nic* endpoint) {
  for (auto& port : ports_) {
    if (port->peer() == endpoint) {
      Nic::Disconnect(port.get());
      return;
    }
  }
}

}  // namespace kite
