// Learning Ethernet bridge (NetBSD bridge(4) analogue).
//
// Kite's network application creates a bridge, adds the physical interface,
// and adds each netback VIF as guests connect (paper §4.3). The bridge
// learns source MACs per port, forwards unicast to the learned port, and
// floods unknown/broadcast frames.
#ifndef SRC_NET_BRIDGE_H_
#define SRC_NET_BRIDGE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/netif.h"
#include "src/net/queue.h"
#include "src/sim/cpu.h"

namespace kite {

class Bridge {
 public:
  // forward_cost is charged to `vcpu` per forwarded frame (the driver
  // domain's CPU doing the bridging). vcpu may be null (no accounting).
  Bridge(std::string name, Vcpu* vcpu, SimDuration forward_cost = Nanos(100))
      : name_(std::move(name)), vcpu_(vcpu), forward_cost_(forward_cost) {}

  const std::string& name() const { return name_; }

  // Adds an interface as a bridge port; the bridge takes over the
  // interface's input handler (promiscuous member port).
  void AddIf(NetIf* netif);
  void RemoveIf(NetIf* netif);
  bool HasIf(const NetIf* netif) const;
  int port_count() const { return static_cast<int>(ports_.size()); }

  // Optional local sink: unicast frames for this MAC are handed to the local
  // stack (the driver domain's own IP on the physical interface) instead of
  // being forwarded.
  void SetLocalSink(MacAddr mac, std::function<void(const EthernetFrame&)> fn) {
    local_mac_ = mac;
    local_sink_ = std::move(fn);
  }

  // Attaches a bounded egress queue to a member port: frames the bridge
  // forwards out `port` pass the queue's DropPolicy and serialize at its
  // drain rate instead of being delivered synchronously. Ports without a
  // queue (the default) keep the synchronous model. Re-enabling replaces
  // the old queue.
  void EnablePortQueue(Executor* executor, NetIf* port, EgressQueueParams params,
                       std::unique_ptr<DropPolicy> policy = nullptr);
  // The port's egress queue, or nullptr if none was enabled.
  EgressQueue* port_queue(NetIf* port) const;

  // Unicast frames actually admitted toward their egress port; frames a
  // port queue's DropPolicy rejects count in queue_drops() instead.
  uint64_t forwarded() const { return forwarded_; }
  uint64_t flooded() const { return flooded_; }
  // Frames dropped at port egress queues (all ports).
  uint64_t queue_drops() const;
  size_t fdb_size() const { return fdb_.size(); }

  // Test hook: the port the FDB learned for a MAC (nullptr if unknown).
  NetIf* LookupFdb(MacAddr mac) const;

 private:
  void Input(NetIf* ingress, const EthernetFrame& frame);
  // Returns false if the port's egress queue dropped the frame.
  bool SendOut(NetIf* port, const EthernetFrame& frame);

  std::string name_;
  Vcpu* vcpu_;
  SimDuration forward_cost_;
  std::vector<NetIf*> ports_;
  std::map<NetIf*, std::unique_ptr<EgressQueue>> queues_;
  std::map<MacAddr, NetIf*> fdb_;
  MacAddr local_mac_;
  std::function<void(const EthernetFrame&)> local_sink_;
  uint64_t forwarded_ = 0;
  uint64_t flooded_ = 0;
};

}  // namespace kite

#endif  // SRC_NET_BRIDGE_H_
