// Link-layer and network-layer addresses.
#ifndef SRC_NET_ADDR_H_
#define SRC_NET_ADDR_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "src/base/strings.h"

namespace kite {

struct MacAddr {
  std::array<uint8_t, 6> octets{};

  constexpr auto operator<=>(const MacAddr&) const = default;

  bool IsBroadcast() const {
    for (uint8_t o : octets) {
      if (o != 0xff) {
        return false;
      }
    }
    return true;
  }

  std::string ToString() const {
    return StrFormat("%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1], octets[2],
                     octets[3], octets[4], octets[5]);
  }

  static MacAddr Broadcast() { return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}; }

  // Locally administered address derived from an integer id (stable for
  // tests). id 0 is reserved.
  static MacAddr FromId(uint32_t id) {
    return MacAddr{{0x02, 0x4b, 0x49, static_cast<uint8_t>(id >> 16),
                    static_cast<uint8_t>(id >> 8), static_cast<uint8_t>(id)}};
  }
};

struct Ipv4Addr {
  uint32_t value = 0;  // Host byte order.

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  bool IsZero() const { return value == 0; }
  bool IsBroadcast() const { return value == 0xffffffffu; }

  std::string ToString() const {
    return StrFormat("%u.%u.%u.%u", value >> 24 & 0xff, value >> 16 & 0xff,
                     value >> 8 & 0xff, value & 0xff);
  }

  static constexpr Ipv4Addr FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return Ipv4Addr{static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
                    static_cast<uint32_t>(c) << 8 | d};
  }
  static constexpr Ipv4Addr Broadcast() { return Ipv4Addr{0xffffffffu}; }

  bool SameSubnet(Ipv4Addr other, uint32_t mask) const {
    return (value & mask) == (other.value & mask);
  }
};

inline constexpr uint32_t kSlash24 = 0xffffff00u;

}  // namespace kite

#endif  // SRC_NET_ADDR_H_
