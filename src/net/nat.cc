#include "src/net/nat.h"

#include "src/base/log.h"

namespace kite {

Nat::Nat(Vcpu* vcpu, NetIf* outside, Ipv4Addr public_ip, SimDuration forward_cost)
    : vcpu_(vcpu), outside_(outside), public_ip_(public_ip), forward_cost_(forward_cost) {
  outside_->SetInputHandler([this](const EthernetFrame& frame) { FromOutside(frame); });
  outside_->SetUp(true);
}

void Nat::AddInside(NetIf* netif) {
  inside_.push_back(netif);
  netif->SetInputHandler(
      [this, netif](const EthernetFrame& frame) { FromInside(netif, frame); });
  netif->SetUp(true);
}

bool Nat::ExtractOutbound(const Ipv4Packet& packet, uint8_t* proto, uint16_t* id) {
  if (const UdpDatagram* udp = std::get_if<UdpDatagram>(&packet.l4)) {
    *proto = kIpProtoUdp;
    *id = udp->src_port;
    return true;
  }
  if (const TcpSegment* tcp = std::get_if<TcpSegment>(&packet.l4)) {
    *proto = kIpProtoTcp;
    *id = tcp->src_port;
    return true;
  }
  if (const IcmpMessage* icmp = std::get_if<IcmpMessage>(&packet.l4)) {
    if (icmp->is_echo_request) {
      *proto = kIpProtoIcmp;
      *id = icmp->ident;
      return true;
    }
  }
  return false;
}

bool Nat::ExtractInbound(const Ipv4Packet& packet, uint8_t* proto, uint16_t* id) {
  if (const UdpDatagram* udp = std::get_if<UdpDatagram>(&packet.l4)) {
    *proto = kIpProtoUdp;
    *id = udp->dst_port;
    return true;
  }
  if (const TcpSegment* tcp = std::get_if<TcpSegment>(&packet.l4)) {
    *proto = kIpProtoTcp;
    *id = tcp->dst_port;
    return true;
  }
  if (const IcmpMessage* icmp = std::get_if<IcmpMessage>(&packet.l4)) {
    if (!icmp->is_echo_request) {
      *proto = kIpProtoIcmp;
      *id = icmp->ident;
      return true;
    }
  }
  return false;
}

void Nat::RewriteSource(Ipv4Packet* packet, Ipv4Addr ip, uint16_t id) {
  packet->src = ip;
  if (UdpDatagram* udp = std::get_if<UdpDatagram>(&packet->l4)) {
    udp->src_port = id;
  } else if (TcpSegment* tcp = std::get_if<TcpSegment>(&packet->l4)) {
    tcp->src_port = id;
  } else if (IcmpMessage* icmp = std::get_if<IcmpMessage>(&packet->l4)) {
    icmp->ident = id;
  }
}

void Nat::RewriteDestination(Ipv4Packet* packet, Ipv4Addr ip, uint16_t id) {
  packet->dst = ip;
  if (UdpDatagram* udp = std::get_if<UdpDatagram>(&packet->l4)) {
    udp->dst_port = id;
  } else if (TcpSegment* tcp = std::get_if<TcpSegment>(&packet->l4)) {
    tcp->dst_port = id;
  } else if (IcmpMessage* icmp = std::get_if<IcmpMessage>(&packet->l4)) {
    icmp->ident = id;
  }
}

Nat::Flow* Nat::FlowFor(const FlowKey& key, NetIf* ingress, MacAddr inside_mac) {
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    return &it->second;
  }
  Flow flow;
  flow.key = key;
  flow.public_id = next_public_id_++;
  flow.inside_if = ingress;
  flow.inside_mac = inside_mac;
  auto [inserted, ok] = by_key_.emplace(key, flow);
  by_public_[static_cast<uint32_t>(key.proto) << 16 | flow.public_id] = key;
  return &inserted->second;
}

void Nat::FromInside(NetIf* ingress, const EthernetFrame& frame) {
  if (vcpu_ != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("net/nat"));
    vcpu_->Charge(forward_cost_);
  }
  // Answer ARP queries from inside hosts for any outside address: the NAT
  // is their gateway.
  if (const ArpPacket* arp = frame.arp()) {
    if (arp->is_request) {
      ArpPacket reply;
      reply.is_request = false;
      reply.sender_mac = ingress->mac();
      reply.sender_ip = arp->target_ip;
      reply.target_mac = arp->sender_mac;
      reply.target_ip = arp->sender_ip;
      EthernetFrame out;
      out.dst = arp->sender_mac;
      out.src = ingress->mac();
      out.ethertype = kEtherTypeArp;
      out.payload = reply;
      ingress->Output(out);
    }
    return;
  }
  const Ipv4Packet* ip = frame.ip();
  if (ip == nullptr) {
    return;
  }
  uint8_t proto;
  uint16_t id;
  if (!ExtractOutbound(*ip, &proto, &id)) {
    ++dropped_unmatched_;
    return;
  }
  Flow* flow = FlowFor(FlowKey{proto, ip->src.value, id}, ingress, frame.src);
  Ipv4Packet rewritten = *ip;
  RewriteSource(&rewritten, public_ip_, flow->public_id);
  ++translated_out_;

  EthernetFrame out;
  out.src = outside_->mac();
  auto arp_it = outside_arp_.find(rewritten.dst);
  out.dst = arp_it != outside_arp_.end() ? arp_it->second : MacAddr::Broadcast();
  out.ethertype = kEtherTypeIpv4;
  out.payload = std::move(rewritten);
  outside_->Output(out);
}

void Nat::FromOutside(const EthernetFrame& frame) {
  if (vcpu_ != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("net/nat"));
    vcpu_->Charge(forward_cost_);
  }
  if (const ArpPacket* arp = frame.arp()) {
    outside_arp_[arp->sender_ip] = arp->sender_mac;
    if (arp->is_request && arp->target_ip == public_ip_) {
      ArpPacket reply;
      reply.is_request = false;
      reply.sender_mac = outside_->mac();
      reply.sender_ip = public_ip_;
      reply.target_mac = arp->sender_mac;
      reply.target_ip = arp->sender_ip;
      EthernetFrame out;
      out.dst = arp->sender_mac;
      out.src = outside_->mac();
      out.ethertype = kEtherTypeArp;
      out.payload = reply;
      outside_->Output(out);
    }
    return;
  }
  const Ipv4Packet* ip = frame.ip();
  if (ip == nullptr || ip->dst != public_ip_) {
    return;
  }
  outside_arp_[ip->src] = frame.src;  // Opportunistic learning.
  uint8_t proto;
  uint16_t id;
  if (!ExtractInbound(*ip, &proto, &id)) {
    ++dropped_unmatched_;
    return;
  }
  auto pub_it = by_public_.find(static_cast<uint32_t>(proto) << 16 | id);
  if (pub_it == by_public_.end()) {
    ++dropped_unmatched_;
    return;
  }
  Flow& flow = by_key_.at(pub_it->second);
  Ipv4Packet rewritten = *ip;
  RewriteDestination(&rewritten, Ipv4Addr{flow.key.inside_ip}, flow.key.inside_id);
  ++translated_in_;

  EthernetFrame out;
  out.src = flow.inside_if->mac();
  out.dst = flow.inside_mac;
  out.ethertype = kEtherTypeIpv4;
  out.payload = std::move(rewritten);
  flow.inside_if->Output(out);
}

}  // namespace kite
