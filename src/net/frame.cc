#include "src/net/frame.h"

#include <algorithm>

#include "src/base/log.h"

namespace kite {
namespace {

// Pseudo-header checksum seed for UDP/TCP (RFC 768/793).
uint32_t PseudoHeaderSum(Ipv4Addr src, Ipv4Addr dst, uint8_t proto, size_t l4_len) {
  uint32_t sum = 0;
  sum += src.value >> 16;
  sum += src.value & 0xffff;
  sum += dst.value >> 16;
  sum += dst.value & 0xffff;
  sum += proto;
  sum += static_cast<uint32_t>(l4_len);
  return sum;
}

uint16_t ChecksumWithPseudo(std::span<const uint8_t> l4, Ipv4Addr src, Ipv4Addr dst,
                            uint8_t proto) {
  // Fold the pseudo header into the initial accumulator (already 16-bit
  // chunks, InternetChecksum folds carries).
  return InternetChecksum(l4, PseudoHeaderSum(src, dst, proto, l4.size()));
}

}  // namespace

size_t Ipv4Packet::L4Bytes() const {
  return std::visit([](const auto& p) { return p.ByteSize(); }, l4);
}

size_t EthernetFrame::PayloadBytes() const {
  return std::visit([](const auto& p) { return p.ByteSize(); }, payload);
}

size_t EthernetFrame::WireBytes() const {
  size_t body = kEthernetHeaderBytes + PayloadBytes();
  if (body < 60) {
    body = 60;  // Minimum Ethernet frame (without FCS).
  }
  // Preamble (8) + FCS (4) + inter-frame gap (12).
  return body + 24;
}

// --- UDP. ---

void SerializeUdpInto(const UdpDatagram& udp, Ipv4Addr src, Ipv4Addr dst, Buffer* out) {
  const size_t base = out->size();
  ByteWriter w(out);
  w.U16(udp.src_port);
  w.U16(udp.dst_port);
  w.U16(static_cast<uint16_t>(kUdpHeaderBytes + udp.payload.size()));
  w.U16(0);  // Checksum placeholder.
  w.Raw(udp.payload);
  uint16_t csum = ChecksumWithPseudo(
      std::span<const uint8_t>(out->data() + base, out->size() - base), src, dst,
      kIpProtoUdp);
  if (csum == 0) {
    csum = 0xffff;  // RFC 768: transmitted as all-ones.
  }
  (*out)[base + 6] = static_cast<uint8_t>(csum >> 8);
  (*out)[base + 7] = static_cast<uint8_t>(csum);
}

Buffer SerializeUdp(const UdpDatagram& udp, Ipv4Addr src, Ipv4Addr dst) {
  Buffer out;
  out.reserve(udp.ByteSize());
  SerializeUdpInto(udp, src, dst, &out);
  return out;
}

std::optional<UdpDatagram> ParseUdp(std::span<const uint8_t> data, Ipv4Addr src,
                                    Ipv4Addr dst, bool verify_checksum) {
  ByteReader r(data);
  UdpDatagram udp;
  udp.src_port = r.U16();
  udp.dst_port = r.U16();
  uint16_t len = r.U16();
  r.U16();  // Checksum.
  if (!r.ok() || len < kUdpHeaderBytes || len > data.size()) {
    return std::nullopt;
  }
  udp.payload.assign(data.begin() + kUdpHeaderBytes, data.begin() + len);
  if (verify_checksum) {
    // Recomputing over the full datagram (checksum field included) must give
    // zero for a valid packet.
    uint16_t check = InternetChecksum(data.subspan(0, len),
                                      PseudoHeaderSum(src, dst, kIpProtoUdp, len));
    if (check != 0 && check != 0xffff) {
      return std::nullopt;
    }
  }
  return udp;
}

// --- ICMP. ---

void SerializeIcmpInto(const IcmpMessage& icmp, Buffer* out) {
  const size_t base = out->size();
  ByteWriter w(out);
  w.U8(icmp.is_echo_request ? 8 : 0);
  w.U8(0);   // Code.
  w.U16(0);  // Checksum placeholder.
  w.U16(icmp.ident);
  w.U16(icmp.sequence);
  w.Raw(icmp.payload);
  uint16_t csum = InternetChecksum(
      std::span<const uint8_t>(out->data() + base, out->size() - base));
  (*out)[base + 2] = static_cast<uint8_t>(csum >> 8);
  (*out)[base + 3] = static_cast<uint8_t>(csum);
}

Buffer SerializeIcmp(const IcmpMessage& icmp) {
  Buffer out;
  out.reserve(icmp.ByteSize());
  SerializeIcmpInto(icmp, &out);
  return out;
}

std::optional<IcmpMessage> ParseIcmp(std::span<const uint8_t> data, bool verify_checksum) {
  if (data.size() < 8) {
    return std::nullopt;
  }
  if (verify_checksum && InternetChecksum(data) != 0) {
    return std::nullopt;
  }
  ByteReader r(data);
  IcmpMessage icmp;
  uint8_t type = r.U8();
  r.U8();
  r.U16();
  icmp.ident = r.U16();
  icmp.sequence = r.U16();
  if (type == 8) {
    icmp.is_echo_request = true;
  } else if (type == 0) {
    icmp.is_echo_request = false;
  } else {
    return std::nullopt;
  }
  icmp.payload.assign(data.begin() + 8, data.end());
  return icmp;
}

// --- TCP. ---

void SerializeTcpInto(const TcpSegment& tcp, Ipv4Addr src, Ipv4Addr dst, Buffer* out) {
  const size_t base = out->size();
  ByteWriter w(out);
  w.U16(tcp.src_port);
  w.U16(tcp.dst_port);
  w.U32(tcp.seq);
  w.U32(tcp.ack);
  uint8_t flags = 0;
  if (tcp.fin) flags |= 0x01;
  if (tcp.syn) flags |= 0x02;
  if (tcp.rst) flags |= 0x04;
  if (tcp.ack_flag) flags |= 0x10;
  w.U8(5 << 4);  // Data offset: 5 words, no options.
  w.U8(flags);
  w.U16(static_cast<uint16_t>(std::min<uint32_t>(tcp.window, 0xffff)));
  w.U16(0);  // Checksum placeholder.
  w.U16(0);  // Urgent pointer.
  w.Raw(tcp.payload);
  uint16_t csum = ChecksumWithPseudo(
      std::span<const uint8_t>(out->data() + base, out->size() - base), src, dst,
      kIpProtoTcp);
  (*out)[base + 16] = static_cast<uint8_t>(csum >> 8);
  (*out)[base + 17] = static_cast<uint8_t>(csum);
}

Buffer SerializeTcp(const TcpSegment& tcp, Ipv4Addr src, Ipv4Addr dst) {
  Buffer out;
  out.reserve(tcp.ByteSize());
  SerializeTcpInto(tcp, src, dst, &out);
  return out;
}

std::optional<TcpSegment> ParseTcp(std::span<const uint8_t> data, Ipv4Addr src,
                                   Ipv4Addr dst, bool verify_checksum) {
  if (data.size() < kTcpHeaderBytes) {
    return std::nullopt;
  }
  if (verify_checksum) {
    uint16_t check =
        InternetChecksum(data, PseudoHeaderSum(src, dst, kIpProtoTcp, data.size()));
    if (check != 0) {
      return std::nullopt;
    }
  }
  ByteReader r(data);
  TcpSegment tcp;
  tcp.src_port = r.U16();
  tcp.dst_port = r.U16();
  tcp.seq = r.U32();
  tcp.ack = r.U32();
  uint8_t offset = r.U8() >> 4;
  uint8_t flags = r.U8();
  tcp.fin = (flags & 0x01) != 0;
  tcp.syn = (flags & 0x02) != 0;
  tcp.rst = (flags & 0x04) != 0;
  tcp.ack_flag = (flags & 0x10) != 0;
  tcp.window = r.U16();
  const size_t header_len = static_cast<size_t>(offset) * 4;
  if (header_len < kTcpHeaderBytes || header_len > data.size()) {
    return std::nullopt;
  }
  tcp.payload.assign(data.begin() + header_len, data.end());
  return tcp;
}

// --- IPv4. ---

void SerializeIpv4Into(const Ipv4Packet& packet, Buffer* out) {
  const size_t base = out->size();
  ByteWriter w(out);
  w.U8(0x45);  // Version 4, IHL 5.
  w.U8(0);     // DSCP/ECN.
  w.U16(0);    // Total length placeholder (patched after the L4 append).
  w.U16(packet.id);
  uint16_t frag_field = static_cast<uint16_t>((packet.frag_offset / 8) & 0x1fff);
  if (packet.more_frags) {
    frag_field |= 0x2000;
  }
  w.U16(frag_field);
  w.U8(packet.ttl);
  w.U8(packet.proto);
  w.U16(0);  // Header checksum placeholder.
  w.U32(packet.src.value);
  w.U32(packet.dst.value);
  // Serialize the L4 straight into the output (no intermediate buffer).
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, UdpDatagram>) {
          SerializeUdpInto(p, packet.src, packet.dst, out);
        } else if constexpr (std::is_same_v<T, IcmpMessage>) {
          SerializeIcmpInto(p, out);
        } else if constexpr (std::is_same_v<T, TcpSegment>) {
          SerializeTcpInto(p, packet.src, packet.dst, out);
        } else {
          out->insert(out->end(), p.bytes.begin(), p.bytes.end());
        }
      },
      packet.l4);
  const uint16_t total_len = static_cast<uint16_t>(out->size() - base);
  (*out)[base + 2] = static_cast<uint8_t>(total_len >> 8);
  (*out)[base + 3] = static_cast<uint8_t>(total_len);
  uint16_t csum = InternetChecksum(
      std::span<const uint8_t>(out->data() + base, kIpv4HeaderBytes));
  (*out)[base + 10] = static_cast<uint8_t>(csum >> 8);
  (*out)[base + 11] = static_cast<uint8_t>(csum);
}

Buffer SerializeIpv4(const Ipv4Packet& packet) {
  Buffer out;
  out.reserve(packet.ByteSize());
  SerializeIpv4Into(packet, &out);
  return out;
}

std::optional<Ipv4Packet> ParseIpv4(std::span<const uint8_t> data, bool verify_checksum) {
  if (data.size() < kIpv4HeaderBytes) {
    return std::nullopt;
  }
  ByteReader r(data);
  uint8_t vihl = r.U8();
  if ((vihl >> 4) != 4) {
    return std::nullopt;
  }
  const size_t header_len = static_cast<size_t>(vihl & 0x0f) * 4;
  r.U8();
  uint16_t total_len = r.U16();
  if (header_len < kIpv4HeaderBytes || total_len < header_len || total_len > data.size()) {
    return std::nullopt;
  }
  if (verify_checksum && InternetChecksum(data.subspan(0, header_len)) != 0) {
    return std::nullopt;
  }
  Ipv4Packet packet;
  packet.id = r.U16();
  uint16_t frag_field = r.U16();
  packet.more_frags = (frag_field & 0x2000) != 0;
  packet.frag_offset = static_cast<uint16_t>((frag_field & 0x1fff) * 8);
  packet.ttl = r.U8();
  packet.proto = r.U8();
  r.U16();  // Checksum.
  packet.src.value = r.U32();
  packet.dst.value = r.U32();
  std::span<const uint8_t> l4 = data.subspan(header_len, total_len - header_len);
  if (packet.IsFragment()) {
    packet.l4 = RawL4{Buffer(l4.begin(), l4.end())};
    return packet;
  }
  switch (packet.proto) {
    case kIpProtoUdp: {
      auto udp = ParseUdp(l4, packet.src, packet.dst);
      if (!udp.has_value()) {
        return std::nullopt;
      }
      packet.l4 = std::move(*udp);
      break;
    }
    case kIpProtoIcmp: {
      auto icmp = ParseIcmp(l4);
      if (!icmp.has_value()) {
        return std::nullopt;
      }
      packet.l4 = std::move(*icmp);
      break;
    }
    case kIpProtoTcp: {
      auto tcp = ParseTcp(l4, packet.src, packet.dst);
      if (!tcp.has_value()) {
        return std::nullopt;
      }
      packet.l4 = std::move(*tcp);
      break;
    }
    default:
      packet.l4 = RawL4{Buffer(l4.begin(), l4.end())};
      break;
  }
  return packet;
}

// --- ARP. ---

void SerializeArpInto(const ArpPacket& arp, Buffer* out) {
  ByteWriter w(out);
  w.U16(1);       // Hardware type: Ethernet.
  w.U16(0x0800);  // Protocol type: IPv4.
  w.U8(6);
  w.U8(4);
  w.U16(arp.is_request ? 1 : 2);
  w.Raw(arp.sender_mac.octets);
  w.U32(arp.sender_ip.value);
  w.Raw(arp.target_mac.octets);
  w.U32(arp.target_ip.value);
}

Buffer SerializeArp(const ArpPacket& arp) {
  Buffer out;
  out.reserve(arp.ByteSize());
  SerializeArpInto(arp, &out);
  return out;
}

std::optional<ArpPacket> ParseArp(std::span<const uint8_t> data) {
  if (data.size() < 28) {
    return std::nullopt;
  }
  ByteReader r(data);
  if (r.U16() != 1 || r.U16() != 0x0800 || r.U8() != 6 || r.U8() != 4) {
    return std::nullopt;
  }
  uint16_t op = r.U16();
  ArpPacket arp;
  arp.is_request = op == 1;
  if (op != 1 && op != 2) {
    return std::nullopt;
  }
  r.Raw(arp.sender_mac.octets);
  arp.sender_ip.value = r.U32();
  r.Raw(arp.target_mac.octets);
  arp.target_ip.value = r.U32();
  return arp;
}

// --- Ethernet. ---

void SerializeEthernetInto(const EthernetFrame& frame, Buffer* out) {
  ByteWriter w(out);
  w.Raw(frame.dst.octets);
  w.Raw(frame.src.octets);
  w.U16(frame.ethertype);
  if (const ArpPacket* arp = frame.arp()) {
    SerializeArpInto(*arp, out);
  } else {
    SerializeIpv4Into(*frame.ip(), out);
  }
}

Buffer SerializeEthernet(const EthernetFrame& frame) {
  Buffer out;
  out.reserve(kEthernetHeaderBytes + frame.PayloadBytes());
  SerializeEthernetInto(frame, &out);
  return out;
}

std::optional<EthernetFrame> ParseEthernet(std::span<const uint8_t> data) {
  if (data.size() < kEthernetHeaderBytes) {
    return std::nullopt;
  }
  EthernetFrame frame;
  ByteReader r(data);
  r.Raw(frame.dst.octets);
  r.Raw(frame.src.octets);
  frame.ethertype = r.U16();
  std::span<const uint8_t> body = data.subspan(kEthernetHeaderBytes);
  if (frame.ethertype == kEtherTypeArp) {
    auto arp = ParseArp(body);
    if (!arp.has_value()) {
      return std::nullopt;
    }
    frame.payload = *arp;
  } else if (frame.ethertype == kEtherTypeIpv4) {
    auto ip = ParseIpv4(body);
    if (!ip.has_value()) {
      return std::nullopt;
    }
    frame.payload = std::move(*ip);
  } else {
    return std::nullopt;
  }
  return frame;
}

// --- Fragmentation. ---

std::vector<Ipv4Packet> FragmentIpv4(const Ipv4Packet& packet, size_t mtu) {
  const size_t max_l4 = mtu - kIpv4HeaderBytes;
  if (packet.L4Bytes() <= max_l4) {
    return {packet};
  }
  // Serialize the transport payload once, then slice into 8-byte-aligned
  // fragments (the IP fragment-offset unit).
  Buffer l4;
  l4.reserve(packet.L4Bytes());
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, UdpDatagram>) {
          SerializeUdpInto(p, packet.src, packet.dst, &l4);
        } else if constexpr (std::is_same_v<T, IcmpMessage>) {
          SerializeIcmpInto(p, &l4);
        } else if constexpr (std::is_same_v<T, TcpSegment>) {
          SerializeTcpInto(p, packet.src, packet.dst, &l4);
        } else {
          l4 = p.bytes;
        }
      },
      packet.l4);

  const size_t chunk = max_l4 & ~size_t{7};
  std::vector<Ipv4Packet> fragments;
  for (size_t off = 0; off < l4.size(); off += chunk) {
    const size_t len = std::min(chunk, l4.size() - off);
    Ipv4Packet frag;
    frag.src = packet.src;
    frag.dst = packet.dst;
    frag.proto = packet.proto;
    frag.ttl = packet.ttl;
    frag.id = packet.id;
    frag.frag_offset = static_cast<uint16_t>(off);
    frag.more_frags = off + len < l4.size();
    frag.l4 = RawL4{Buffer(l4.begin() + off, l4.begin() + off + len)};
    fragments.push_back(std::move(frag));
  }
  return fragments;
}

std::optional<Ipv4Packet> Ipv4Reassembler::Add(const Ipv4Packet& fragment) {
  if (!fragment.IsFragment()) {
    return fragment;
  }
  const RawL4* raw = std::get_if<RawL4>(&fragment.l4);
  KITE_CHECK(raw != nullptr) << "fragments must carry raw L4 bytes";
  Key key{fragment.src.value, fragment.dst.value, fragment.id, fragment.proto};
  Partial& part = pending_[key];
  const size_t end = fragment.frag_offset + raw->bytes.size();
  if (part.bytes.size() < end) {
    part.bytes.resize(end);
    part.have.resize(end);
  }
  for (size_t i = 0; i < raw->bytes.size(); ++i) {
    const size_t pos = fragment.frag_offset + i;
    if (!part.have[pos]) {
      part.have[pos] = true;
      ++part.have_bytes;
    }
    part.bytes[pos] = raw->bytes[i];
  }
  if (!fragment.more_frags) {
    part.total_len = end;
  }
  if (part.total_len == 0 || part.have_bytes < part.total_len) {
    if (pending_.size() > max_pending_) {
      pending_.erase(pending_.begin());  // Crude aging.
    }
    return std::nullopt;
  }
  // Complete: rebuild the packet with a parsed L4.
  Buffer l4(part.bytes.begin(), part.bytes.begin() + part.total_len);
  pending_.erase(key);
  Ipv4Packet whole;
  whole.src = fragment.src;
  whole.dst = fragment.dst;
  whole.proto = fragment.proto;
  whole.ttl = fragment.ttl;
  whole.id = fragment.id;
  switch (whole.proto) {
    case kIpProtoUdp: {
      auto udp = ParseUdp(l4, whole.src, whole.dst);
      if (!udp.has_value()) {
        return std::nullopt;
      }
      whole.l4 = std::move(*udp);
      break;
    }
    case kIpProtoIcmp: {
      auto icmp = ParseIcmp(l4);
      if (!icmp.has_value()) {
        return std::nullopt;
      }
      whole.l4 = std::move(*icmp);
      break;
    }
    case kIpProtoTcp: {
      auto tcp = ParseTcp(l4, whole.src, whole.dst);
      if (!tcp.has_value()) {
        return std::nullopt;
      }
      whole.l4 = std::move(*tcp);
      break;
    }
    default:
      whole.l4 = RawL4{std::move(l4)};
      break;
  }
  return whole;
}

}  // namespace kite
