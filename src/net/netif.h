// Network interface abstraction (NetBSD ifnet analogue).
//
// A NetIf is anything a stack or bridge can attach to: the physical NIC's
// interface in a driver domain, a netback VIF, or a guest netfront interface.
#ifndef SRC_NET_NETIF_H_
#define SRC_NET_NETIF_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/frame.h"

namespace kite {

class NetIf {
 public:
  NetIf(std::string ifname, MacAddr mac) : ifname_(std::move(ifname)), mac_(mac) {}
  virtual ~NetIf() = default;

  NetIf(const NetIf&) = delete;
  NetIf& operator=(const NetIf&) = delete;

  const std::string& ifname() const { return ifname_; }
  MacAddr mac() const { return mac_; }

  bool up() const { return up_; }
  void SetUp(bool up) { up_ = up; }

  // Transmits a frame out of this interface. Implementations deliver to the
  // wire (NIC), to the peer ring (VIF/netfront), etc.
  virtual void Output(const EthernetFrame& frame) = 0;

  // The attached consumer (stack or bridge) receives inbound frames here.
  void SetInputHandler(std::function<void(const EthernetFrame&)> fn) {
    input_handler_ = std::move(fn);
  }
  bool has_input_handler() const { return input_handler_ != nullptr; }

  // Feeds a frame into this interface as if it arrived from the medium
  // (used by tests and by software devices).
  void InjectInput(const EthernetFrame& frame) { DeliverInput(frame); }

  uint64_t tx_frames() const { return tx_frames_; }
  uint64_t tx_bytes() const { return tx_bytes_; }
  uint64_t rx_frames() const { return rx_frames_; }
  uint64_t rx_bytes() const { return rx_bytes_; }

 protected:
  void CountTx(const EthernetFrame& frame) {
    ++tx_frames_;
    tx_bytes_ += frame.PayloadBytes() + kEthernetHeaderBytes;
  }

  // Called by implementations when an inbound frame is ready for the
  // consumer. Dropped (counted by callers where relevant) if no handler.
  void DeliverInput(const EthernetFrame& frame) {
    ++rx_frames_;
    rx_bytes_ += frame.PayloadBytes() + kEthernetHeaderBytes;
    if (input_handler_) {
      input_handler_(frame);
    }
  }

 private:
  std::string ifname_;
  MacAddr mac_;
  bool up_ = false;
  std::function<void(const EthernetFrame&)> input_handler_;
  uint64_t tx_frames_ = 0;
  uint64_t tx_bytes_ = 0;
  uint64_t rx_frames_ = 0;
  uint64_t rx_bytes_ = 0;
};

}  // namespace kite

#endif  // SRC_NET_NETIF_H_
