#include "src/net/tcp.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {
namespace {

// Signed distance for wrap-safe sequence comparison.
int32_t SeqDiff(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b); }

constexpr uint32_t kMss = static_cast<uint32_t>(kTcpMss);

}  // namespace

const char* TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RECEIVED";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinSent:
      return "FIN_SENT";
    case TcpState::kClosed:
      return "CLOSED";
  }
  return "?";
}

TcpConn::TcpConn(EtherStack* stack, Ipv4Addr peer_ip, uint16_t peer_port,
                 uint16_t local_port)
    : stack_(stack), peer_ip_(peer_ip), peer_port_(peer_port), local_port_(local_port) {
  // Deterministic ISN derived from the 4-tuple keeps runs reproducible.
  snd_una_ = snd_nxt_ = snd_max_ =
      (static_cast<uint32_t>(local_port) << 16) ^ peer_ip.value ^ 0x1d073c9u;
  const TcpParams& tp = stack_->params().tcp;
  cwnd_ = tp.initial_cwnd_segments * kMss;
  rto_ = tp.initial_rto;
  ledger_ = stack_->LedgerFor(peer_ip_, peer_port_, local_port_);
  if (stack_->params().per_flow_metrics && stack_->params().metrics != nullptr) {
    MetricRegistry* reg = stack_->params().metrics;
    const std::string& dom = stack_->params().metrics_domain;
    const std::string dev =
        StrFormat("tcp:%s:%u-%u", peer_ip_.ToString().c_str(),
                  static_cast<unsigned>(peer_port_), static_cast<unsigned>(local_port_));
    g_cwnd_ = reg->gauge(dom, dev, "cwnd_bytes");
    g_ssthresh_ = reg->gauge(dom, dev, "ssthresh_bytes");
    g_srtt_ = reg->gauge(dom, dev, "srtt_ns");
    g_retransmits_ = reg->gauge(dom, dev, "retransmits");
    g_fast_retransmits_ = reg->gauge(dom, dev, "fast_retransmits");
    UpdateFlowGauges();
  }
}

TcpConn::~TcpConn() { *alive_ = false; }

uint32_t TcpConn::FlightSize() const {
  return static_cast<uint32_t>(SeqDiff(snd_nxt_, snd_una_));
}

void TcpConn::StartActiveOpen(std::function<void(TcpConn*)> connected_cb) {
  connected_cb_ = std::move(connected_cb);
  state_ = TcpState::kSynSent;
  TcpSegment syn;
  syn.syn = true;
  syn.seq = snd_nxt_;
  ++snd_nxt_;
  snd_max_ = snd_nxt_;
  EmitSegment(std::move(syn));
  ArmRto();
}

void TcpConn::StartPassiveOpen(const TcpSegment& syn, std::function<void(TcpConn*)> accept_cb) {
  KITE_CHECK(syn.syn && !syn.ack_flag);
  connected_cb_ = std::move(accept_cb);
  state_ = TcpState::kSynReceived;
  rcv_nxt_ = syn.seq + 1;
  TcpSegment synack;
  synack.syn = true;
  synack.ack_flag = true;
  synack.seq = snd_nxt_;
  synack.ack = rcv_nxt_;
  ++snd_nxt_;
  snd_max_ = snd_nxt_;
  EmitSegment(std::move(synack));
  ArmRto();
}

void TcpConn::Send(Buffer data) {
  KITE_CHECK(!fin_pending_ && !fin_sent_) << "Send after Close";
  if (state_ == TcpState::kClosed) {
    return;
  }
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  if (state_ == TcpState::kEstablished) {
    PumpSend();
  }
}

void TcpConn::Close() {
  if (state_ == TcpState::kClosed || fin_pending_ || fin_sent_) {
    return;
  }
  fin_pending_ = true;
  if (state_ == TcpState::kEstablished) {
    PumpSend();
  }
}

void TcpConn::Abort() {
  if (state_ == TcpState::kClosed) {
    return;
  }
  // The RST must pass the peer's RFC 5961-style checks: a SYN_SENT peer
  // wants its sequence echoed in the ack, an established peer wants an
  // in-window sequence. Use the highest sequence ever sent — after a
  // go-back-N rewind snd_nxt_ can sit below the peer's rcv_nxt_.
  TcpSegment rst;
  rst.rst = true;
  rst.ack_flag = true;
  rst.ack = rcv_nxt_;
  rst.seq = snd_max_ + (fin_ever_sent_ ? 1 : 0);
  EmitSegment(std::move(rst));
  EnterClosed(/*deliver_close=*/false);
}

void TcpConn::OnSegment(const TcpSegment& seg) {
  if (state_ == TcpState::kClosed) {
    return;
  }
  if (stack_->tcp_counters_.segs_in != nullptr) {
    stack_->tcp_counters_.segs_in->Inc();
  }
  if (seg.rst) {
    // A reset must prove it belongs to this flow (RFC 5961 flavour): before
    // the handshake completes the proof is the echoed ack; after, the
    // sequence must land inside the receive window. Blind/fuzzed RSTs fail
    // both and are dropped.
    if (state_ == TcpState::kSynSent) {
      if (!seg.ack_flag || seg.ack != snd_nxt_) {
        return;
      }
    } else if (static_cast<uint32_t>(seg.seq - rcv_nxt_) >= kTcpWindowBytes) {
      return;
    }
    EnterClosed(/*deliver_close=*/true);
    return;
  }

  // --- Handshake progression. ---
  if (state_ == TcpState::kSynSent) {
    if (seg.syn && seg.ack_flag && seg.ack == snd_nxt_) {
      rcv_nxt_ = seg.seq + 1;
      snd_una_ = seg.ack;
      state_ = TcpState::kEstablished;
      rto_retries_ = 0;
      rto_armed_ = false;
      SendAckNow();
      if (connected_cb_) {
        auto cb = std::move(connected_cb_);
        connected_cb_ = nullptr;
        cb(this);
      }
      PumpSend();
    }
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    if (seg.ack_flag && seg.ack == snd_nxt_) {
      snd_una_ = seg.ack;
      state_ = TcpState::kEstablished;
      rto_retries_ = 0;
      rto_armed_ = false;
      if (connected_cb_) {
        auto cb = std::move(connected_cb_);
        connected_cb_ = nullptr;
        cb(this);
      }
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  if (seg.ack_flag) {
    OnAck(seg);
    if (state_ == TcpState::kClosed) {
      return;
    }
  }

  if (!seg.payload.empty() || seg.fin) {
    if (!HandleData(seg)) {
      return;  // A callback closed us.
    }
  }

  if (fin_acked_ && peer_fin_received_ && state_ != TcpState::kClosed) {
    EnterClosed(/*deliver_close=*/true);
  }
}

void TcpConn::OnAck(const TcpSegment& seg) {
  // A rewound sender (go-back-N) may be acked past snd_nxt_ when the receiver
  // already held the tail out of order — accept anything up to snd_max_, plus
  // the FIN octet if a FIN was *ever* sent: the rewind clears fin_sent_, but
  // a receiver holding tail + FIN still acks past it, and rejecting that ack
  // would livelock the connection into an RTO-retry abort.
  const uint32_t snd_limit = snd_max_ + (fin_ever_sent_ ? 1 : 0);
  const int32_t acked = SeqDiff(seg.ack, snd_una_);
  if (acked > 0 && SeqDiff(seg.ack, snd_limit) <= 0) {
    if (SeqDiff(seg.ack, snd_nxt_) > 0) {
      snd_nxt_ = seg.ack;
    }
    uint32_t fin_seq_bump = 0;
    if (fin_ever_sent_ && seg.ack == snd_limit) {
      fin_acked_ = true;
      // A rewound FIN acked before its re-emission counts as sent again.
      fin_sent_ = true;
      if (state_ == TcpState::kEstablished) {
        state_ = TcpState::kFinSent;
      }
      fin_seq_bump = 1;
    }
    const size_t payload_acked = static_cast<size_t>(acked) - fin_seq_bump;
    KITE_CHECK(payload_acked <= send_buf_.size());
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + payload_acked);
    snd_una_ = seg.ack;
    bytes_acked_ += payload_acked;
    ledger_->acked_in += payload_acked;
    if (stack_->tcp_counters_.bytes_acked != nullptr) {
      stack_->tcp_counters_.bytes_acked->Add(payload_acked);
    }

    // RTT sample once the probe's sequence range is fully acknowledged.
    // Karn's rule: any retransmission disarms the probe before this.
    if (rtt_probe_armed_ && SeqDiff(snd_una_, rtt_probe_end_) >= 0) {
      rtt_probe_armed_ = false;
      UpdateRtt(stack_->executor()->Now() - rtt_probe_sent_);
    }

    // Congestion response (RFC 5681; NewReno partial-ACK handling, RFC 6582).
    if (in_fast_recovery_) {
      if (SeqDiff(seg.ack, recover_) >= 0) {
        // Full ACK: every byte outstanding at loss detection is in; deflate.
        in_fast_recovery_ = false;
        dup_acks_ = 0;
        cwnd_ = ssthresh_;
      } else {
        // Partial ACK: the next hole is lost too — repair it immediately,
        // deflating cwnd by the amount acknowledged (plus one MSS back).
        RetransmitHead();
        const uint32_t deflate = static_cast<uint32_t>(
            std::min<size_t>(payload_acked, cwnd_));
        cwnd_ = std::max(cwnd_ - deflate + kMss, 2 * kMss);
      }
    } else {
      dup_acks_ = 0;
      if (cwnd_ < ssthresh_) {
        // Slow start: one MSS per MSS acknowledged.
        cwnd_ += static_cast<uint32_t>(std::min<size_t>(payload_acked, kMss));
      } else {
        // Congestion avoidance: ~one MSS per RTT.
        cwnd_ += std::max<uint32_t>(1, kMss * kMss / cwnd_);
      }
      cwnd_ = std::min(cwnd_, kTcpWindowBytes);
    }

    // New data acknowledged: RTO comes back to the estimate (backoff ends,
    // the consecutive-retry count starts over) and the timer restarts for
    // whatever is still in flight.
    rto_retries_ = 0;
    RecomputeRto();
    rto_armed_ = false;
    if (SeqDiff(snd_nxt_, snd_una_) > 0) {
      ArmRto();
    }
    UpdateFlowGauges();
    PumpSend();
  } else if (acked == 0 && seg.payload.empty() && !seg.syn && !seg.fin &&
             SeqDiff(snd_nxt_, snd_una_) > 0) {
    OnDupAck();
  }
  peer_window_ = kTcpWindowBytes;  // Fixed-window model.
}

void TcpConn::OnDupAck() {
  const TcpParams& tp = stack_->params().tcp;
  ++dup_acks_;
  if (in_fast_recovery_) {
    // Each further dup-ACK means another segment left the network: inflate.
    cwnd_ += kMss;
    UpdateFlowGauges();
    PumpSend();
    return;
  }
  if (dup_acks_ == tp.dupack_threshold) {
    // Fast retransmit: the head segment is presumed lost.
    ssthresh_ = std::max(FlightSize() / 2, 2 * kMss);
    RetransmitHead();
    ++fast_retransmits_;
    if (stack_->tcp_counters_.fast_retransmits != nullptr) {
      stack_->tcp_counters_.fast_retransmits->Inc();
    }
    in_fast_recovery_ = true;
    recover_ = snd_nxt_;
    cwnd_ = ssthresh_ + 3 * kMss;
    rto_armed_ = false;
    ArmRto();
    UpdateFlowGauges();
  }
}

void TcpConn::RetransmitHead() {
  rtt_probe_armed_ = false;  // Karn: samples spanning a retransmit are invalid.
  if (stack_->tcp_counters_.retransmits != nullptr) {
    stack_->tcp_counters_.retransmits->Inc();
  }
  const size_t len = std::min(kTcpMss, send_buf_.size());
  if (len == 0) {
    // Only our FIN is outstanding.
    if (fin_sent_ && !fin_acked_) {
      TcpSegment fin;
      fin.fin = true;
      fin.ack_flag = true;
      fin.seq = snd_una_;
      fin.ack = rcv_nxt_;
      EmitSegment(std::move(fin));
    }
    return;
  }
  TcpSegment seg;
  seg.seq = snd_una_;
  seg.ack_flag = true;
  seg.ack = rcv_nxt_;
  seg.payload.assign(send_buf_.begin(), send_buf_.begin() + len);
  bytes_sent_ += len;
  EmitSegment(std::move(seg));
}

bool TcpConn::HandleData(const TcpSegment& seg) {
  const uint32_t len = static_cast<uint32_t>(seg.payload.size());
  const uint32_t seq_end = seg.seq + len;
  const uint32_t seq_end_fin = seq_end + (seg.fin ? 1 : 0);
  if (SeqDiff(seq_end_fin, rcv_nxt_) <= 0) {
    // Entirely old: a duplicate retransmission (or already-consumed FIN).
    // Re-ACK so the sender's cumulative picture catches up.
    SendAckNow();
    return true;
  }
  if (SeqDiff(seg.seq, rcv_nxt_) > 0) {
    // A hole precedes this segment: buffer it (bounded by the receive
    // window) and ACK immediately — this is what generates the duplicate
    // ACKs fast retransmit counts.
    if (ooo_bytes_ + len <= kTcpWindowBytes) {
      auto [it, inserted] = ooo_.try_emplace(seg.seq);
      if (inserted) {
        it->second.data = seg.payload;
        ooo_bytes_ += len;
      }
      // The FIN rides on the buffered copy only when both copies agree where
      // the stream ends: a forged same-seq segment with a different length
      // must not relocate the FIN onto the buffered entry's shorter end.
      if (seg.fin && it->second.data.size() == seg.payload.size()) {
        it->second.fin = true;
      }
    }
    SendAckNow();
    return true;
  }

  // In order (possibly overlapping an already-received prefix).
  const bool had_hole = !ooo_.empty();
  const bool fin_before = peer_fin_received_;
  const uint32_t skip = static_cast<uint32_t>(SeqDiff(rcv_nxt_, seg.seq));
  if (len > skip) {
    DeliverInOrder(std::span<const uint8_t>(seg.payload.data() + skip, len - skip));
    if (state_ == TcpState::kClosed) {
      return false;
    }
  }
  if (seg.fin && !peer_fin_received_ && rcv_nxt_ == seq_end) {
    HandlePeerFin();
  }
  if (state_ != TcpState::kClosed) {
    DrainOoo();
  }
  if (state_ == TcpState::kClosed) {
    return false;
  }
  if (peer_fin_received_ && !fin_before) {
    // HandlePeerFin already acknowledged everything through the FIN.
    return true;
  }
  if (had_hole) {
    // Filling (or extending toward) a hole: ACK immediately (RFC 5681 §4.2).
    SendAckNow();
  } else if (ack_pending_segments_ >= 2) {
    SendAckNow();
  } else {
    ScheduleDelayedAck();
  }
  return true;
}

void TcpConn::DeliverInOrder(std::span<const uint8_t> payload) {
  rcv_nxt_ += static_cast<uint32_t>(payload.size());
  bytes_received_ += payload.size();
  ledger_->delivered += payload.size();
  if (stack_->tcp_counters_.bytes_delivered != nullptr) {
    stack_->tcp_counters_.bytes_delivered->Add(payload.size());
  }
  ++ack_pending_segments_;
  if (data_cb_) {
    data_cb_(payload);
  }
}

void TcpConn::DrainOoo() {
  while (!ooo_.empty() && state_ != TcpState::kClosed) {
    auto it = ooo_.begin();
    if (SeqDiff(it->first, rcv_nxt_) > 0) {
      return;  // Still a hole before the first buffered segment.
    }
    const uint32_t seq = it->first;
    OooSeg buffered = std::move(it->second);
    ooo_.erase(it);
    ooo_bytes_ -= buffered.data.size();
    const uint32_t end = seq + static_cast<uint32_t>(buffered.data.size());
    if (SeqDiff(end, rcv_nxt_) > 0) {
      const uint32_t skip = static_cast<uint32_t>(SeqDiff(rcv_nxt_, seq));
      DeliverInOrder(std::span<const uint8_t>(buffered.data.data() + skip,
                                              buffered.data.size() - skip));
      if (state_ == TcpState::kClosed) {
        return;
      }
    }
    if (buffered.fin && !peer_fin_received_ && rcv_nxt_ == end) {
      HandlePeerFin();
    }
  }
}

void TcpConn::HandlePeerFin() {
  peer_fin_received_ = true;
  ++rcv_nxt_;
  SendAckNow();
  if (fin_acked_) {
    EnterClosed(/*deliver_close=*/true);
  } else if (!fin_sent_) {
    // Peer closed first: tell the application.
    if (close_cb_ && !close_delivered_) {
      close_delivered_ = true;
      close_cb_();
    }
  }
}

void TcpConn::PumpSend() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinSent) {
    return;
  }
  const uint32_t wnd = std::min(peer_window_, cwnd_);
  const uint32_t fin_adjust = fin_sent_ ? 1 : 0;
  uint32_t in_flight = static_cast<uint32_t>(SeqDiff(snd_nxt_, snd_una_)) - fin_adjust;
  size_t send_offset = in_flight;  // Bytes of send_buf_ already in flight.
  bool sent_any = false;
  while (send_offset < send_buf_.size() && in_flight < wnd && !fin_sent_) {
    const size_t len =
        std::min({kTcpMss, send_buf_.size() - send_offset,
                  static_cast<size_t>(wnd - in_flight)});
    if (len == 0) {
      break;
    }
    TcpSegment seg;
    seg.seq = snd_nxt_;
    seg.ack_flag = true;
    seg.ack = rcv_nxt_;
    seg.payload.assign(send_buf_.begin() + send_offset,
                       send_buf_.begin() + send_offset + len);
    const uint32_t seq_end = snd_nxt_ + static_cast<uint32_t>(len);
    if (SeqDiff(snd_nxt_, snd_max_) < 0) {
      // Go-back-N resend of bytes below snd_max_.
      rtt_probe_armed_ = false;  // Karn.
      if (stack_->tcp_counters_.retransmits != nullptr) {
        stack_->tcp_counters_.retransmits->Inc();
      }
    } else if (!rtt_probe_armed_) {
      // Fresh data with no probe outstanding: time this segment.
      rtt_probe_armed_ = true;
      rtt_probe_end_ = seq_end;
      rtt_probe_sent_ = stack_->executor()->Now();
    }
    const int32_t fresh = SeqDiff(seq_end, snd_max_);
    if (fresh > 0) {
      ledger_->payload_sent +=
          std::min<size_t>(static_cast<size_t>(fresh), len);
      snd_max_ = seq_end;
    }
    snd_nxt_ = seq_end;
    bytes_sent_ += len;
    send_offset += len;
    in_flight += static_cast<uint32_t>(len);
    EmitSegment(std::move(seg));
    sent_any = true;
    // Piggybacked ACK: clear any pending delayed ACK.
    ack_pending_segments_ = 0;
  }
  if (fin_pending_ && !fin_sent_ && send_offset >= send_buf_.size()) {
    TcpSegment fin;
    fin.fin = true;
    fin.ack_flag = true;
    fin.seq = snd_nxt_;
    fin.ack = rcv_nxt_;
    ++snd_nxt_;
    fin_sent_ = true;
    fin_ever_sent_ = true;
    state_ = TcpState::kFinSent;
    EmitSegment(std::move(fin));
    sent_any = true;
  }
  if (sent_any) {
    ArmRto();
  }
}

void TcpConn::EmitSegment(TcpSegment&& seg) {
  seg.src_port = local_port_;
  seg.dst_port = peer_port_;
  seg.window = std::min<uint32_t>(kTcpWindowBytes, 0xffff);
  if (stack_->tcp_counters_.segs_out != nullptr) {
    stack_->tcp_counters_.segs_out->Inc();
  }
  Ipv4Packet packet;
  packet.src = stack_->ip();
  packet.dst = peer_ip_;
  packet.proto = kIpProtoTcp;
  packet.l4 = std::move(seg);
  stack_->SendIp(std::move(packet));
}

void TcpConn::SendAckNow() {
  ack_pending_segments_ = 0;
  TcpSegment ack;
  ack.ack_flag = true;
  ack.seq = snd_nxt_;
  ack.ack = rcv_nxt_;
  EmitSegment(std::move(ack));
}

void TcpConn::ScheduleDelayedAck() {
  if (delayed_ack_armed_) {
    return;
  }
  delayed_ack_armed_ = true;
  stack_->executor()->PostAfter(Micros(100), KITE_POST_SITE("tcp/delayed-ack"),
                                [this, alive = alive_] {
    if (!*alive) {
      return;
    }
    delayed_ack_armed_ = false;
    if (state_ != TcpState::kClosed && ack_pending_segments_ > 0) {
      SendAckNow();
    }
  });
}

void TcpConn::ArmRto() {
  ++rto_generation_;
  rto_armed_ = true;
  stack_->executor()->PostAfter(rto_, KITE_POST_SITE("tcp/rto"),
                                [this, alive = alive_, gen = rto_generation_] {
    if (*alive) {
      OnRto(gen);
    }
  });
}

void TcpConn::OnRto(uint64_t generation) {
  if (generation != rto_generation_ || !rto_armed_ || state_ == TcpState::kClosed) {
    return;
  }
  const TcpParams& tp = stack_->params().tcp;
  rto_armed_ = false;
  ++retransmits_;
  ++rto_retries_;
  if (stack_->tcp_counters_.rto_fires != nullptr) {
    stack_->tcp_counters_.rto_fires->Inc();
  }
  if (rto_retries_ > tp.max_retransmits) {
    Abort();
    if (close_cb_ && !close_delivered_) {
      close_delivered_ = true;
      close_cb_();
    }
    return;
  }
  // Timeout: collapse to one segment and restart slow start (RFC 5681 §3.1);
  // back the timer off exponentially until new data is acknowledged (Karn).
  if (state_ == TcpState::kEstablished || state_ == TcpState::kFinSent) {
    ssthresh_ = std::max(FlightSize() / 2, 2 * kMss);
    cwnd_ = kMss;
    in_fast_recovery_ = false;
    dup_acks_ = 0;
  }
  rto_ = std::min(rto_ * 2, tp.max_rto);
  rtt_probe_armed_ = false;
  UpdateFlowGauges();
  // Go-back-N: rewind snd_nxt to the last acknowledged point and resend.
  switch (state_) {
    case TcpState::kSynSent: {
      TcpSegment syn;
      syn.syn = true;
      syn.seq = snd_una_;
      EmitSegment(std::move(syn));
      ArmRto();
      break;
    }
    case TcpState::kSynReceived: {
      TcpSegment synack;
      synack.syn = true;
      synack.ack_flag = true;
      synack.seq = snd_una_;
      synack.ack = rcv_nxt_;
      EmitSegment(std::move(synack));
      ArmRto();
      break;
    }
    case TcpState::kEstablished:
    case TcpState::kFinSent: {
      snd_nxt_ = snd_una_;
      if (fin_sent_ && !fin_acked_) {
        fin_sent_ = false;  // FIN will be re-emitted by PumpSend.
        state_ = TcpState::kEstablished;
      }
      PumpSend();
      break;
    }
    case TcpState::kClosed:
      break;
  }
}

void TcpConn::UpdateRtt(SimDuration sample) {
  if (!srtt_valid_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    srtt_valid_ = true;
  } else {
    const SimDuration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (rttvar_ * 3 + err) / 4;
    srtt_ = (srtt_ * 7 + sample) / 8;
  }
}

void TcpConn::RecomputeRto() {
  const TcpParams& tp = stack_->params().tcp;
  if (!srtt_valid_) {
    rto_ = tp.initial_rto;
    return;
  }
  SimDuration var = rttvar_ * 4;
  if (var < Micros(1)) {
    var = Micros(1);
  }
  rto_ = std::clamp(srtt_ + var, tp.min_rto, tp.max_rto);
}

void TcpConn::UpdateFlowGauges() {
  if (g_cwnd_ == nullptr) {
    return;
  }
  g_cwnd_->Set(cwnd_);
  g_ssthresh_->Set(ssthresh_);
  g_srtt_->Set(static_cast<double>(srtt_.ns()));
  g_retransmits_->Set(retransmits_);
  g_fast_retransmits_->Set(fast_retransmits_);
}

void TcpConn::EnterClosed(bool deliver_close) {
  if (state_ == TcpState::kClosed) {
    return;
  }
  state_ = TcpState::kClosed;
  ++rto_generation_;  // Invalidate outstanding timers.
  rto_armed_ = false;
  ooo_.clear();
  ooo_bytes_ = 0;
  UpdateFlowGauges();
  if (deliver_close && close_cb_ && !close_delivered_) {
    close_delivered_ = true;
    close_cb_();
  }
  stack_->RemoveConn(this);
}

}  // namespace kite
