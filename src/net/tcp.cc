#include "src/net/tcp.h"

#include <algorithm>

#include "src/base/log.h"

namespace kite {
namespace {

// Signed distance for wrap-safe sequence comparison.
int32_t SeqDiff(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b); }

}  // namespace

TcpConn::TcpConn(EtherStack* stack, Ipv4Addr peer_ip, uint16_t peer_port,
                 uint16_t local_port)
    : stack_(stack), peer_ip_(peer_ip), peer_port_(peer_port), local_port_(local_port) {
  // Deterministic ISN derived from the 4-tuple keeps runs reproducible.
  snd_una_ = snd_nxt_ = (static_cast<uint32_t>(local_port) << 16) ^ peer_ip.value ^ 0x1d073c9u;
}

TcpConn::~TcpConn() { *alive_ = false; }

void TcpConn::StartActiveOpen(std::function<void(TcpConn*)> connected_cb) {
  connected_cb_ = std::move(connected_cb);
  state_ = State::kSynSent;
  TcpSegment syn;
  syn.syn = true;
  syn.seq = snd_nxt_;
  ++snd_nxt_;
  EmitSegment(std::move(syn));
  ArmRto();
}

void TcpConn::StartPassiveOpen(const TcpSegment& syn, std::function<void(TcpConn*)> accept_cb) {
  KITE_CHECK(syn.syn && !syn.ack_flag);
  connected_cb_ = std::move(accept_cb);
  state_ = State::kSynReceived;
  rcv_nxt_ = syn.seq + 1;
  TcpSegment synack;
  synack.syn = true;
  synack.ack_flag = true;
  synack.seq = snd_nxt_;
  synack.ack = rcv_nxt_;
  ++snd_nxt_;
  EmitSegment(std::move(synack));
  ArmRto();
}

void TcpConn::Send(Buffer data) {
  KITE_CHECK(!fin_pending_ && !fin_sent_) << "Send after Close";
  if (state_ == State::kClosed) {
    return;
  }
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished) {
    PumpSend();
  }
}

void TcpConn::Close() {
  if (state_ == State::kClosed || fin_pending_ || fin_sent_) {
    return;
  }
  fin_pending_ = true;
  if (state_ == State::kEstablished) {
    PumpSend();
  }
}

void TcpConn::Abort() {
  if (state_ == State::kClosed) {
    return;
  }
  TcpSegment rst;
  rst.rst = true;
  rst.seq = snd_nxt_;
  EmitSegment(std::move(rst));
  EnterClosed(/*deliver_close=*/false);
}

void TcpConn::OnSegment(const TcpSegment& seg) {
  if (state_ == State::kClosed) {
    return;
  }
  if (seg.rst) {
    EnterClosed(/*deliver_close=*/true);
    return;
  }

  // --- Handshake progression. ---
  if (state_ == State::kSynSent) {
    if (seg.syn && seg.ack_flag && seg.ack == snd_nxt_) {
      rcv_nxt_ = seg.seq + 1;
      snd_una_ = seg.ack;
      state_ = State::kEstablished;
      rto_armed_ = false;
      SendAckNow();
      if (connected_cb_) {
        auto cb = std::move(connected_cb_);
        connected_cb_ = nullptr;
        cb(this);
      }
      PumpSend();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (seg.ack_flag && seg.ack == snd_nxt_) {
      snd_una_ = seg.ack;
      state_ = State::kEstablished;
      rto_armed_ = false;
      if (connected_cb_) {
        auto cb = std::move(connected_cb_);
        connected_cb_ = nullptr;
        cb(this);
      }
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  // --- ACK processing. ---
  if (seg.ack_flag) {
    int32_t acked = SeqDiff(seg.ack, snd_una_);
    if (acked > 0 && SeqDiff(seg.ack, snd_nxt_) <= 0) {
      uint32_t fin_seq_bump = 0;
      if (fin_sent_ && seg.ack == snd_nxt_) {
        fin_acked_ = true;
        fin_seq_bump = 1;
      }
      const size_t payload_acked = static_cast<size_t>(acked) - fin_seq_bump;
      KITE_CHECK(payload_acked <= send_buf_.size());
      send_buf_.erase(send_buf_.begin(), send_buf_.begin() + payload_acked);
      snd_una_ = seg.ack;
      rto_armed_ = false;  // Re-armed by PumpSend if data remains in flight.
      if (SeqDiff(snd_nxt_, snd_una_) > 0) {
        ArmRto();
      }
      PumpSend();
    }
    peer_window_ = kTcpWindowBytes;  // Fixed-window model.
  }

  // --- In-order data delivery (go-back-N: out-of-order is dropped). ---
  if (!seg.payload.empty()) {
    if (seg.seq == rcv_nxt_) {
      rcv_nxt_ += static_cast<uint32_t>(seg.payload.size());
      bytes_received_ += seg.payload.size();
      ++ack_pending_segments_;
      if (data_cb_) {
        data_cb_(std::span<const uint8_t>(seg.payload));
      }
      if (state_ == State::kClosed) {
        return;  // Callback closed us.
      }
      if (ack_pending_segments_ >= 2) {
        SendAckNow();
      } else {
        ScheduleDelayedAck();
      }
    } else {
      // Duplicate or hole: re-ACK what we have so the sender can catch up.
      SendAckNow();
    }
  }

  // --- Peer FIN. ---
  if (seg.fin &&
      static_cast<uint32_t>(seg.seq + static_cast<uint32_t>(seg.payload.size())) == rcv_nxt_ &&
      !peer_fin_received_) {
    peer_fin_received_ = true;
    ++rcv_nxt_;
    SendAckNow();
    if (fin_acked_ || !fin_sent_) {
      // Either we already closed, or the peer closed first: deliver close.
      if (fin_acked_) {
        EnterClosed(/*deliver_close=*/true);
      } else if (close_cb_ && !close_delivered_) {
        close_delivered_ = true;
        close_cb_();
      }
    }
  }
  if (fin_acked_ && peer_fin_received_ && state_ != State::kClosed) {
    EnterClosed(/*deliver_close=*/true);
  }
}

void TcpConn::PumpSend() {
  if (state_ != State::kEstablished && state_ != State::kFinSent) {
    return;
  }
  const uint32_t fin_adjust = fin_sent_ ? 1 : 0;
  uint32_t in_flight = static_cast<uint32_t>(SeqDiff(snd_nxt_, snd_una_)) - fin_adjust;
  size_t send_offset = in_flight;  // Bytes of send_buf_ already in flight.
  bool sent_any = false;
  while (send_offset < send_buf_.size() && in_flight < peer_window_ && !fin_sent_) {
    const size_t len =
        std::min({kTcpMss, send_buf_.size() - send_offset,
                  static_cast<size_t>(peer_window_ - in_flight)});
    if (len == 0) {
      break;
    }
    TcpSegment seg;
    seg.seq = snd_nxt_;
    seg.ack_flag = true;
    seg.ack = rcv_nxt_;
    seg.payload.assign(send_buf_.begin() + send_offset,
                       send_buf_.begin() + send_offset + len);
    snd_nxt_ += static_cast<uint32_t>(len);
    bytes_sent_ += len;
    send_offset += len;
    in_flight += static_cast<uint32_t>(len);
    EmitSegment(std::move(seg));
    sent_any = true;
    // Piggybacked ACK: clear any pending delayed ACK.
    ack_pending_segments_ = 0;
  }
  if (fin_pending_ && !fin_sent_ && send_offset >= send_buf_.size()) {
    TcpSegment fin;
    fin.fin = true;
    fin.ack_flag = true;
    fin.seq = snd_nxt_;
    fin.ack = rcv_nxt_;
    ++snd_nxt_;
    fin_sent_ = true;
    state_ = State::kFinSent;
    EmitSegment(std::move(fin));
    sent_any = true;
  }
  if (sent_any) {
    ArmRto();
  }
}

void TcpConn::EmitSegment(TcpSegment&& seg) {
  seg.src_port = local_port_;
  seg.dst_port = peer_port_;
  seg.window = std::min<uint32_t>(kTcpWindowBytes, 0xffff);
  Ipv4Packet packet;
  packet.src = stack_->ip();
  packet.dst = peer_ip_;
  packet.proto = kIpProtoTcp;
  packet.l4 = std::move(seg);
  stack_->SendIp(std::move(packet));
}

void TcpConn::SendAckNow() {
  ack_pending_segments_ = 0;
  TcpSegment ack;
  ack.ack_flag = true;
  ack.seq = snd_nxt_;
  ack.ack = rcv_nxt_;
  EmitSegment(std::move(ack));
}

void TcpConn::ScheduleDelayedAck() {
  if (delayed_ack_armed_) {
    return;
  }
  delayed_ack_armed_ = true;
  stack_->executor()->PostAfter(Micros(100), [this, alive = alive_] {
    if (!*alive) {
      return;
    }
    delayed_ack_armed_ = false;
    if (state_ != State::kClosed && ack_pending_segments_ > 0) {
      SendAckNow();
    }
  });
}

void TcpConn::ArmRto() {
  ++rto_generation_;
  rto_armed_ = true;
  stack_->executor()->PostAfter(rto_, [this, alive = alive_, gen = rto_generation_] {
    if (*alive) {
      OnRto(gen);
    }
  });
}

void TcpConn::OnRto(uint64_t generation) {
  if (generation != rto_generation_ || !rto_armed_ || state_ == State::kClosed) {
    return;
  }
  rto_armed_ = false;
  ++retransmits_;
  if (retransmits_ > 30) {
    Abort();
    if (close_cb_ && !close_delivered_) {
      close_delivered_ = true;
      close_cb_();
    }
    return;
  }
  // Go-back-N: rewind snd_nxt to the last acknowledged point and resend.
  switch (state_) {
    case State::kSynSent: {
      TcpSegment syn;
      syn.syn = true;
      syn.seq = snd_una_;
      EmitSegment(std::move(syn));
      ArmRto();
      break;
    }
    case State::kSynReceived: {
      TcpSegment synack;
      synack.syn = true;
      synack.ack_flag = true;
      synack.seq = snd_una_;
      synack.ack = rcv_nxt_;
      EmitSegment(std::move(synack));
      ArmRto();
      break;
    }
    case State::kEstablished:
    case State::kFinSent: {
      snd_nxt_ = snd_una_;
      if (fin_sent_ && !fin_acked_) {
        fin_sent_ = false;  // FIN will be re-emitted by PumpSend.
        state_ = State::kEstablished;
      }
      PumpSend();
      break;
    }
    case State::kClosed:
      break;
  }
}

void TcpConn::EnterClosed(bool deliver_close) {
  if (state_ == State::kClosed) {
    return;
  }
  state_ = State::kClosed;
  ++rto_generation_;  // Invalidate outstanding timers.
  rto_armed_ = false;
  if (deliver_close && close_cb_ && !close_delivered_) {
    close_delivered_ = true;
    close_cb_();
  }
  stack_->RemoveConn(this);
}

}  // namespace kite
