// Physical NIC model (Intel 82599ES 10GbE class) and the point-to-point
// link between the server's passthrough NIC and the client machine's NIC.
//
// Transmission serializes at line rate; receive queues are bounded, so
// overload produces real packet loss (what the nuttcp UDP benchmark
// measures). The NIC is a PciDevice: in the testbed it is assigned to the
// driver domain via PCI passthrough.
#ifndef SRC_NET_NIC_H_
#define SRC_NET_NIC_H_

#include <deque>
#include <memory>

#include "src/fault/fault.h"
#include "src/hv/pci.h"
#include "src/net/netif.h"
#include "src/net/queue.h"
#include "src/sim/cpu.h"
#include "src/sim/executor.h"

namespace kite {

class Nic;

// The NIC's host-facing interface (e.g. ixg0). Output goes to the wire.
class NicNetIf : public NetIf {
 public:
  NicNetIf(std::string ifname, MacAddr mac, Nic* nic) : NetIf(std::move(ifname), mac), nic_(nic) {}
  void Output(const EthernetFrame& frame) override;

 private:
  friend class Nic;
  Nic* nic_;
};

struct NicParams {
  double gbps = 10.0;
  SimDuration propagation = Nanos(500);   // Direct SFI/SFP+ cable.
  SimDuration rx_frame_cost = Nanos(250);  // Driver per-frame receive cost.
  SimDuration tx_frame_cost = Nanos(200);  // Driver per-frame transmit cost.
  SimDuration irq_latency = Micros(1);
  // Ring depths, in frames. Per the DropPolicy convention (src/net/queue.h),
  // 0 means unbounded — never drop — not "drop everything".
  size_t tx_queue_frames = 1024;
  size_t rx_queue_frames = 1024;
};

class Nic : public PciDevice {
 public:
  Nic(Executor* executor, std::string bdf, std::string ifname, MacAddr mac,
      NicParams params = NicParams{});
  ~Nic() override;

  NetIf* netif() { return &netif_; }
  MacAddr mac() const { return netif_.mac(); }
  const NicParams& params() const { return params_; }

  // Connects two NICs back to back (full duplex).
  static void ConnectBackToBack(Nic* a, Nic* b);
  // Unplugs the cable between `a` and its peer (both ends become unpeered;
  // no-op if already unplugged). Frames already on the wire still arrive.
  static void Disconnect(Nic* a);
  Nic* peer() const { return peer_; }

  // For endpoints outside Xen (the client machine): the vCPU charged for
  // frame processing. For passthrough NICs this is set on domain assignment.
  void SetProcessingVcpu(Vcpu* vcpu) { vcpu_ = vcpu; }
  void OnAssigned(Domain* owner) override;
  void OnUnassigned() override;

  // Optional fault injection rolled on the receive side of the wire (frame
  // loss, FCS corruption). Set on both link ends to fault both directions.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Wire-side: queues the frame for transmission at line rate.
  void Transmit(const EthernetFrame& frame);

  // Replaces the admission policy of the tx/rx ring (drop-tail by default,
  // with the same depth limits as before; see src/net/queue.h for RED-style
  // alternatives). Passing null restores drop-tail.
  void SetTxDropPolicy(std::unique_ptr<DropPolicy> policy);
  void SetRxDropPolicy(std::unique_ptr<DropPolicy> policy);

  uint64_t tx_dropped() const { return tx_dropped_; }
  uint64_t rx_dropped() const { return rx_dropped_; }
  uint64_t rx_delivered() const { return rx_delivered_; }
  uint64_t rx_lost() const { return rx_lost_; }          // Injected wire loss.
  uint64_t rx_fcs_errors() const { return rx_fcs_errors_; }  // Injected corruption.

 private:
  friend class NicNetIf;

  void Arrive(EthernetFrame frame);  // Called by the peer after propagation.
  void ScheduleRxDrain();
  void DrainRx();

  Executor* executor_;
  NicParams params_;
  NicNetIf netif_;
  Nic* peer_ = nullptr;
  Vcpu* vcpu_ = nullptr;
  FaultInjector* faults_ = nullptr;

  SimTime tx_free_at_;
  size_t tx_inflight_ = 0;
  std::deque<EthernetFrame> rx_queue_;
  bool rx_drain_scheduled_ = false;
  std::unique_ptr<DropPolicy> tx_policy_ = std::make_unique<DropTailPolicy>();
  std::unique_ptr<DropPolicy> rx_policy_ = std::make_unique<DropTailPolicy>();

  uint64_t tx_dropped_ = 0;
  uint64_t rx_dropped_ = 0;
  uint64_t rx_delivered_ = 0;
  uint64_t rx_lost_ = 0;
  uint64_t rx_fcs_errors_ = 0;
};

}  // namespace kite

#endif  // SRC_NET_NIC_H_
