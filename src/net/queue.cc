#include "src/net/queue.h"

#include <utility>

namespace kite {

EgressQueue::EgressQueue(Executor* executor, NetIf* port, EgressQueueParams params,
                         std::unique_ptr<DropPolicy> policy)
    : executor_(executor),
      port_(port),
      params_(params),
      policy_(policy != nullptr ? std::move(policy)
                                : std::make_unique<DropTailPolicy>()) {
  if (params_.metrics != nullptr) {
    const std::string device =
        params_.metrics_device.empty() ? port_->ifname() : params_.metrics_device;
    depth_gauge_ = params_.metrics->gauge(params_.metrics_domain, device, "depth_frames");
    drop_counter_ = params_.metrics->counter(params_.metrics_domain, device, "queue_drops");
  }
}

EgressQueue::~EgressQueue() { *alive_ = false; }

bool EgressQueue::Offer(const EthernetFrame& frame) {
  if (params_.limit_frames == 0) {
    // Bypass: the unqueued synchronous model.
    ++forwarded_;
    port_->Output(frame);
    return true;
  }
  if (policy_->ShouldDrop(queue_.size(), params_.limit_frames, frame.WireBytes())) {
    ++dropped_;
    if (drop_counter_ != nullptr) {
      drop_counter_->Inc();
    }
    return false;
  }
  queue_.push_back(frame);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  const SimTime now = executor_->Now();
  if (!drain_scheduled_) {
    ScheduleDrain(busy_until_ > now ? busy_until_ : now);
  }
  return true;
}

void EgressQueue::ScheduleDrain(SimTime at) {
  drain_scheduled_ = true;
  executor_->PostAt(at, KITE_POST_SITE("net/queue-drain"), [this, alive = alive_] {
    if (!*alive) {
      return;
    }
    if (queue_.empty()) {
      drain_scheduled_ = false;
      return;
    }
    EthernetFrame frame = std::move(queue_.front());
    queue_.pop_front();
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    const double bits = static_cast<double>(frame.WireBytes()) * 8.0;
    busy_until_ =
        executor_->Now() + Nanos(static_cast<int64_t>(bits / params_.drain_gbps));
    ++forwarded_;
    // drain_scheduled_ stays true across Output: delivery is synchronous and
    // can reenter Offer (ACK -> new data -> same queue); clearing the flag
    // first would let that reentrant Offer start a second drain chain and
    // the port would serialize above its line rate.
    if (port_->up()) {
      port_->Output(frame);
    }
    if (!queue_.empty()) {
      ScheduleDrain(busy_until_);
    } else {
      drain_scheduled_ = false;
    }
  });
}

}  // namespace kite
