// Bounded L2 queue models (drop-tail today, RED-ready by construction).
//
// Real switches and NICs drop frames at finite queues; the transport's
// congestion response (src/net/tcp.h) is only honest if loss happens at the
// same places. This header provides the two pieces every queueing point
// shares:
//
//   - DropPolicy: the admission decision, separated from the queue itself so
//     a RED/ECN policy can be swapped in without touching device code. The
//     hook sees instantaneous depth, the configured limit, and the arriving
//     frame's wire size — everything RED's EWMA needs.
//   - EgressQueue: a depth-bounded FIFO in front of a NetIf that serializes
//     frames out at a configured line rate. The bridge attaches one per
//     bottleneck port; with limit 0 it bypasses entirely (synchronous
//     forward, byte-identical to the unqueued model).
#ifndef SRC_NET_QUEUE_H_
#define SRC_NET_QUEUE_H_

#include <deque>
#include <memory>
#include <string>

#include "src/net/netif.h"
#include "src/obs/metrics.h"
#include "src/sim/executor.h"

namespace kite {

// Admission decision for a bounded frame queue. Stateless for drop-tail;
// a RED implementation would carry its average-depth EWMA here.
class DropPolicy {
 public:
  virtual ~DropPolicy() = default;
  // Called once per arriving frame, before it is queued. `limit_frames == 0`
  // means unbounded (never drop). Returning true drops the frame.
  virtual bool ShouldDrop(size_t depth_frames, size_t limit_frames,
                          size_t frame_wire_bytes) = 0;
};

// Classic drop-tail: admit until the queue is full.
class DropTailPolicy : public DropPolicy {
 public:
  bool ShouldDrop(size_t depth_frames, size_t limit_frames,
                  size_t /*frame_wire_bytes*/) override {
    return limit_frames != 0 && depth_frames >= limit_frames;
  }
};

struct EgressQueueParams {
  // Queue depth in frames. 0 = bypass: frames forward synchronously with no
  // serialization model — exactly the pre-queue behaviour.
  size_t limit_frames = 0;
  // Serialization rate of the port while queueing is enabled.
  double drain_gbps = 10.0;
  // Optional registry instrumentation: publishes `depth_frames` (gauge) and
  // `queue_drops` (counter) under (metrics_domain, metrics_device) so the
  // metric sampler can record the queue's occupancy over time. Null = the
  // historical untracked queue.
  MetricRegistry* metrics = nullptr;
  std::string metrics_domain = "net";
  std::string metrics_device;  // Defaults to the port's name.
};

// A bounded egress queue in front of a NetIf. Frames admitted by the policy
// serialize out one at a time at drain_gbps; arrivals the policy rejects are
// counted and discarded — where a real switch drops under overload.
class EgressQueue {
 public:
  // `policy` may be null: drop-tail.
  EgressQueue(Executor* executor, NetIf* port, EgressQueueParams params,
              std::unique_ptr<DropPolicy> policy = nullptr);
  ~EgressQueue();

  EgressQueue(const EgressQueue&) = delete;
  EgressQueue& operator=(const EgressQueue&) = delete;

  // Queues (or, with limit 0, directly forwards) the frame.
  // Returns false if the policy dropped it.
  bool Offer(const EthernetFrame& frame);

  NetIf* port() const { return port_; }
  size_t depth() const { return queue_.size(); }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t dropped() const { return dropped_; }
  const EgressQueueParams& params() const { return params_; }

 private:
  void ScheduleDrain(SimTime at);

  Executor* executor_;
  NetIf* port_;
  EgressQueueParams params_;
  std::unique_ptr<DropPolicy> policy_;
  std::deque<EthernetFrame> queue_;
  SimTime busy_until_;
  bool drain_scheduled_ = false;
  uint64_t forwarded_ = 0;
  uint64_t dropped_ = 0;
  // Registry handles (null without EgressQueueParams::metrics).
  Gauge* depth_gauge_ = nullptr;
  Counter* drop_counter_ = nullptr;
  // Drain events capture this flag; a destroyed queue (port removed from the
  // bridge mid-run) turns them into no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace kite

#endif  // SRC_NET_QUEUE_H_
