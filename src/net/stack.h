// EtherStack: a small but real TCP/IP endpoint stack over a NetIf.
//
// Provides ARP resolution, IPv4 with fragmentation/reassembly, ICMP echo
// (ping), UDP sockets, and TCP connections (src/net/tcp.h). Used by guest
// DomUs (behind netfront), by the client load-generator machine, and by
// daemon service VMs (the DHCP server).
#ifndef SRC_NET_STACK_H_
#define SRC_NET_STACK_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/net/frame.h"
#include "src/net/netif.h"
#include "src/obs/metrics.h"
#include "src/sim/cpu.h"
#include "src/sim/executor.h"

namespace kite {

class EtherStack;
class TcpConn;
class TcpListener;

// TCP congestion/retransmission knobs (defaults follow RFC 5681/6298, with
// the simulator's historical 10 ms initial RTO and a low floor because
// simulated RTTs are microseconds, not the internet's milliseconds).
struct TcpParams {
  uint32_t initial_cwnd_segments = 10;   // RFC 6928 IW10.
  uint32_t dupack_threshold = 3;         // Fast retransmit trigger.
  SimDuration initial_rto = Millis(10);  // Before the first RTT sample.
  SimDuration min_rto = Millis(1);       // Floor for the computed RTO.
  SimDuration max_rto = Seconds(4);      // Exponential-backoff ceiling.
  uint32_t max_retransmits = 30;         // Consecutive timeouts before abort.
};

struct StackParams {
  SimDuration per_packet_cost = Nanos(550);  // Per-packet protocol processing.
  SimDuration icmp_reply_cost = Nanos(700);
  TcpParams tcp;
  // Optional observability. With `metrics` set the stack exports aggregate
  // TCP counters under (metrics_domain, "tcp", <name>); with
  // `per_flow_metrics` additionally per-connection cwnd/ssthresh/srtt/
  // retransmit gauges under a flow-id device. Per-flow is off by default —
  // connection-churning workloads would grow the registry without bound.
  MetricRegistry* metrics = nullptr;
  std::string metrics_domain;
  bool per_flow_metrics = false;
};

// Connectionless datagram socket.
class UdpSocket {
 public:
  using RecvFn =
      std::function<void(Ipv4Addr src_ip, uint16_t src_port, const Buffer& payload)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Binds to a specific port (e.g. DHCP's 67/68). Sockets are created
  // already bound to an ephemeral port; Bind rebinds.
  bool Bind(uint16_t port);
  uint16_t local_port() const { return port_; }

  void SetRecvCallback(RecvFn fn) { recv_cb_ = std::move(fn); }

  // Sends a datagram. Broadcast destinations bypass ARP; a stack with no IP
  // yet sends from 0.0.0.0 (DHCP bootstrapping).
  void SendTo(Ipv4Addr dst, uint16_t dst_port, Buffer payload);

  uint64_t datagrams_sent() const { return sent_; }
  uint64_t datagrams_received() const { return received_; }

 private:
  friend class EtherStack;
  explicit UdpSocket(EtherStack* stack) : stack_(stack) {}

  EtherStack* stack_;
  uint16_t port_ = 0;
  RecvFn recv_cb_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

class EtherStack {
 public:
  // vcpu may be null (no CPU accounting, e.g. an ideal client).
  EtherStack(Executor* executor, Vcpu* vcpu, NetIf* netif, StackParams params = StackParams{});
  ~EtherStack();

  EtherStack(const EtherStack&) = delete;
  EtherStack& operator=(const EtherStack&) = delete;

  void ConfigureIp(Ipv4Addr ip, uint32_t netmask = kSlash24);
  Ipv4Addr ip() const { return ip_; }
  MacAddr mac() const { return netif_->mac(); }
  NetIf* netif() const { return netif_; }
  Executor* executor() const { return executor_; }
  Vcpu* vcpu() const { return vcpu_; }

  // --- ICMP. ---
  // Sends an echo request; the callback fires with (true, rtt) on reply.
  // Lost pings time out after `timeout` and report (false, timeout).
  void Ping(Ipv4Addr dst, size_t payload_bytes,
            std::function<void(bool ok, SimDuration rtt)> cb,
            SimDuration timeout = Seconds(1));

  // --- UDP. ---
  std::unique_ptr<UdpSocket> OpenUdp();

  // --- TCP (implementation in src/net/tcp.cc). ---
  TcpListener* ListenTcp(uint16_t port, std::function<void(TcpConn*)> accept_cb);
  void CloseListener(uint16_t port);
  // Initiates a connection; connected_cb fires when established. Returns the
  // connection (owned by the stack; valid until closed).
  TcpConn* ConnectTcp(Ipv4Addr dst, uint16_t dst_port,
                      std::function<void(TcpConn*)> connected_cb);

  // --- Internals shared with TCP and sockets. ---
  void SendIp(Ipv4Packet&& packet);
  uint16_t AllocEphemeralPort() { return next_ephemeral_++; }
  const StackParams& params() const { return params_; }

  // --- TCP flow ledgers (checker's tcp-ledger invariant). ---
  // Lifetime payload totals per flow. Entries survive connection teardown:
  // the checker audits them after the conn objects are gone.
  struct TcpFlowKey {
    uint32_t peer_ip;
    uint16_t peer_port;
    uint16_t local_port;
    auto operator<=>(const TcpFlowKey&) const = default;
  };
  struct TcpFlowLedger {
    uint64_t payload_sent = 0;  // New payload bytes transmitted (first send).
    uint64_t acked_in = 0;      // Our payload bytes cumulatively acked by peer.
    uint64_t delivered = 0;     // In-order payload bytes consumed (== acked out).
  };
  const std::map<TcpFlowKey, TcpFlowLedger>& tcp_ledgers() const {
    return tcp_ledgers_;
  }

  // --- Stats. ---
  uint64_t ip_tx_packets() const { return ip_tx_; }
  uint64_t ip_rx_packets() const { return ip_rx_; }
  uint64_t arp_requests_sent() const { return arp_requests_; }

  // Static ARP entry injection (tests).
  void AddArpEntry(Ipv4Addr ip, MacAddr mac) { arp_table_[ip] = mac; }
  bool HasArpEntry(Ipv4Addr ip) const { return arp_table_.count(ip) != 0; }

 private:
  friend class UdpSocket;
  friend class TcpConn;

  void Input(const EthernetFrame& frame);
  void HandleArp(const ArpPacket& arp);
  void HandleIp(const Ipv4Packet& packet);
  void HandleIcmp(const Ipv4Packet& packet, const IcmpMessage& icmp);
  void Transmit(MacAddr dst, Ipv4Packet&& packet);
  void RemoveConn(TcpConn* conn);
  TcpConn* CreateConn(Ipv4Addr peer_ip, uint16_t peer_port, uint16_t local_port);
  TcpFlowLedger* LedgerFor(Ipv4Addr peer_ip, uint16_t peer_port, uint16_t local_port);

  // Aggregate TCP counters under (metrics_domain, "tcp", <name>); all null
  // when StackParams::metrics is unset.
  struct TcpStackCounters {
    Counter* segs_out = nullptr;
    Counter* segs_in = nullptr;
    Counter* retransmits = nullptr;       // Retransmitted segments.
    Counter* fast_retransmits = nullptr;  // Fast-retransmit events.
    Counter* rto_fires = nullptr;         // Retransmission timeouts.
    Counter* bytes_acked = nullptr;
    Counter* bytes_delivered = nullptr;
  };

  struct PendingPing {
    SimTime sent_at;
    std::function<void(bool, SimDuration)> cb;
    bool done = false;
  };

  Executor* executor_;
  Vcpu* vcpu_;
  NetIf* netif_;
  StackParams params_;

  Ipv4Addr ip_;
  uint32_t netmask_ = kSlash24;
  uint16_t next_ip_id_ = 1;
  uint16_t next_ephemeral_ = 32768;
  Ipv4Reassembler reassembler_;

  std::map<Ipv4Addr, MacAddr> arp_table_;
  std::map<Ipv4Addr, std::vector<Ipv4Packet>> arp_pending_;

  uint16_t ping_ident_;
  uint16_t next_ping_seq_ = 1;
  std::map<uint16_t, std::shared_ptr<PendingPing>> pending_pings_;

  std::map<uint16_t, UdpSocket*> udp_ports_;

  struct ConnKey {
    uint32_t peer_ip;
    uint16_t peer_port;
    uint16_t local_port;
    auto operator<=>(const ConnKey&) const = default;
  };
  std::map<ConnKey, std::unique_ptr<TcpConn>> conns_;
  std::map<uint16_t, std::unique_ptr<TcpListener>> listeners_;
  std::map<TcpFlowKey, TcpFlowLedger> tcp_ledgers_;
  TcpStackCounters tcp_counters_;

  uint64_t ip_tx_ = 0;
  uint64_t ip_rx_ = 0;
  uint64_t arp_requests_ = 0;
};

}  // namespace kite

#endif  // SRC_NET_STACK_H_
