// Network address translation (NAPT) — the alternative driver-domain
// organization the paper names alongside bridging (§3.1: "to link netbacks
// to a physical NIC, techniques such as bridging, routing, and network
// address translation (NAT) are used"; NetBSD's NAT "must be ported and
// adapted").
//
// The NAT box owns the outside (physical) interface and any number of
// inside interfaces (VIFs). Outbound UDP/TCP flows and ICMP echo streams are
// rewritten to the public IP with an allocated port/ident; inbound traffic
// is matched against the translation table and rewritten back.
#ifndef SRC_NET_NAT_H_
#define SRC_NET_NAT_H_

#include <map>
#include <vector>

#include "src/net/netif.h"
#include "src/sim/cpu.h"

namespace kite {

class Nat {
 public:
  // forward_cost is charged per translated packet to the driver domain's
  // vCPU (NAT costs more than bridging: header rewrite + table lookup).
  Nat(Vcpu* vcpu, NetIf* outside, Ipv4Addr public_ip,
      SimDuration forward_cost = Nanos(250));

  // Adds an inside interface; hosts behind it use private addresses.
  void AddInside(NetIf* netif);

  Ipv4Addr public_ip() const { return public_ip_; }
  size_t flow_count() const { return by_key_.size(); }
  uint64_t translated_out() const { return translated_out_; }
  uint64_t translated_in() const { return translated_in_; }
  uint64_t dropped_unmatched() const { return dropped_unmatched_; }

 private:
  struct FlowKey {
    uint8_t proto;
    uint32_t inside_ip;
    uint16_t inside_id;  // Port (UDP/TCP) or ICMP ident.
    auto operator<=>(const FlowKey&) const = default;
  };
  struct Flow {
    FlowKey key;
    uint16_t public_id;
    NetIf* inside_if;
    MacAddr inside_mac;
  };

  void FromInside(NetIf* ingress, const EthernetFrame& frame);
  void FromOutside(const EthernetFrame& frame);
  Flow* FlowFor(const FlowKey& key, NetIf* ingress, MacAddr inside_mac);
  // Extracts (proto, id) from the L4 of a packet; false if untranslatable.
  static bool ExtractOutbound(const Ipv4Packet& packet, uint8_t* proto, uint16_t* id);
  static bool ExtractInbound(const Ipv4Packet& packet, uint8_t* proto, uint16_t* id);
  static void RewriteSource(Ipv4Packet* packet, Ipv4Addr ip, uint16_t id);
  static void RewriteDestination(Ipv4Packet* packet, Ipv4Addr ip, uint16_t id);

  Vcpu* vcpu_;
  NetIf* outside_;
  Ipv4Addr public_ip_;
  SimDuration forward_cost_;
  std::vector<NetIf*> inside_;
  std::map<FlowKey, Flow> by_key_;
  std::map<uint32_t, FlowKey> by_public_;  // (proto << 16 | public_id) → key.
  uint16_t next_public_id_ = 20000;
  // Outside-peer MAC learning (the NAT answers ARP for its public IP).
  std::map<Ipv4Addr, MacAddr> outside_arp_;
  uint64_t translated_out_ = 0;
  uint64_t translated_in_ = 0;
  uint64_t dropped_unmatched_ = 0;
};

}  // namespace kite

#endif  // SRC_NET_NAT_H_
