#include "src/net/stack.h"

#include "src/base/log.h"
#include "src/net/tcp.h"

namespace kite {

// --- UdpSocket. ---

UdpSocket::~UdpSocket() {
  if (stack_ != nullptr && port_ != 0) {
    stack_->udp_ports_.erase(port_);
  }
}

bool UdpSocket::Bind(uint16_t port) {
  KITE_CHECK(port != 0);
  if (stack_->udp_ports_.count(port) != 0) {
    return false;
  }
  if (port_ != 0) {
    stack_->udp_ports_.erase(port_);
  }
  port_ = port;
  stack_->udp_ports_[port] = this;
  return true;
}

void UdpSocket::SendTo(Ipv4Addr dst, uint16_t dst_port, Buffer payload) {
  Ipv4Packet packet;
  packet.src = stack_->ip();  // May be 0.0.0.0 before DHCP configuration.
  packet.dst = dst;
  packet.proto = kIpProtoUdp;
  UdpDatagram udp;
  udp.src_port = port_;
  udp.dst_port = dst_port;
  udp.payload = std::move(payload);
  packet.l4 = std::move(udp);
  ++sent_;
  stack_->SendIp(std::move(packet));
}

// --- EtherStack. ---

EtherStack::EtherStack(Executor* executor, Vcpu* vcpu, NetIf* netif, StackParams params)
    : executor_(executor), vcpu_(vcpu), netif_(netif), params_(params) {
  // Stable per-stack ICMP identifier derived from the MAC.
  ping_ident_ = static_cast<uint16_t>(netif->mac().octets[4] << 8 | netif->mac().octets[5]);
  netif_->SetInputHandler([this](const EthernetFrame& frame) { Input(frame); });
  netif_->SetUp(true);
  if (params_.metrics != nullptr) {
    MetricRegistry* reg = params_.metrics;
    const std::string& dom = params_.metrics_domain;
    tcp_counters_.segs_out = reg->counter(dom, "tcp", "segs_out");
    tcp_counters_.segs_in = reg->counter(dom, "tcp", "segs_in");
    tcp_counters_.retransmits = reg->counter(dom, "tcp", "retransmits");
    tcp_counters_.fast_retransmits = reg->counter(dom, "tcp", "fast_retransmits");
    tcp_counters_.rto_fires = reg->counter(dom, "tcp", "rto_fires");
    tcp_counters_.bytes_acked = reg->counter(dom, "tcp", "bytes_acked");
    tcp_counters_.bytes_delivered = reg->counter(dom, "tcp", "bytes_delivered");
  }
}

EtherStack::~EtherStack() {
  // Scheduled ping-timeout events capture `this`; marking every pending ping
  // done turns them into no-ops once the stack is gone. The callbacks are
  // dropped, not invoked — their owner is being destroyed.
  for (auto& [seq, pending] : pending_pings_) {
    pending->done = true;
  }
  if (netif_ != nullptr) {
    netif_->SetInputHandler(nullptr);
  }
}

void EtherStack::ConfigureIp(Ipv4Addr ip, uint32_t netmask) {
  ip_ = ip;
  netmask_ = netmask;
}

void EtherStack::Ping(Ipv4Addr dst, size_t payload_bytes,
                      std::function<void(bool, SimDuration)> cb, SimDuration timeout) {
  uint16_t seq = next_ping_seq_++;
  auto pending = std::make_shared<PendingPing>();
  pending->sent_at = executor_->Now();
  pending->cb = std::move(cb);
  pending_pings_[seq] = pending;

  Ipv4Packet packet;
  packet.src = ip_;
  packet.dst = dst;
  packet.proto = kIpProtoIcmp;
  IcmpMessage icmp;
  icmp.is_echo_request = true;
  icmp.ident = ping_ident_;
  icmp.sequence = seq;
  icmp.payload.assign(payload_bytes, 0xa5);
  packet.l4 = std::move(icmp);
  SendIp(std::move(packet));

  executor_->PostAfter(timeout, KITE_POST_SITE("stack/ping-timeout"),
                       [this, seq, pending, timeout] {
    if (!pending->done) {
      pending->done = true;
      pending_pings_.erase(seq);
      pending->cb(false, timeout);
    }
  });
}

std::unique_ptr<UdpSocket> EtherStack::OpenUdp() {
  auto sock = std::unique_ptr<UdpSocket>(new UdpSocket(this));
  // Bind to an ephemeral port immediately.
  uint16_t port = AllocEphemeralPort();
  while (udp_ports_.count(port) != 0) {
    port = AllocEphemeralPort();
  }
  sock->port_ = port;
  udp_ports_[port] = sock.get();
  return sock;
}

void EtherStack::SendIp(Ipv4Packet&& packet) {
  packet.id = next_ip_id_++;
  if (vcpu_ != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("net/stack"));
    vcpu_->Charge(params_.per_packet_cost);
  }
  ++ip_tx_;

  if (packet.dst.IsBroadcast()) {
    Transmit(MacAddr::Broadcast(), std::move(packet));
    return;
  }
  auto it = arp_table_.find(packet.dst);
  if (it != arp_table_.end()) {
    Transmit(it->second, std::move(packet));
    return;
  }
  // ARP miss: queue the packet and solicit.
  const Ipv4Addr target = packet.dst;
  arp_pending_[target].push_back(std::move(packet));
  ArpPacket arp;
  arp.is_request = true;
  arp.sender_mac = mac();
  arp.sender_ip = ip_;
  arp.target_ip = target;
  EthernetFrame frame;
  frame.dst = MacAddr::Broadcast();
  frame.src = mac();
  frame.ethertype = kEtherTypeArp;
  frame.payload = arp;
  ++arp_requests_;
  netif_->Output(frame);
}

void EtherStack::Transmit(MacAddr dst, Ipv4Packet&& packet) {
  for (Ipv4Packet& frag : FragmentIpv4(packet)) {
    EthernetFrame frame;
    frame.dst = dst;
    frame.src = mac();
    frame.ethertype = kEtherTypeIpv4;
    frame.payload = std::move(frag);
    netif_->Output(frame);
  }
}

void EtherStack::Input(const EthernetFrame& frame) {
  if (vcpu_ != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("net/stack"));
    vcpu_->Charge(params_.per_packet_cost);
  }
  if (const ArpPacket* arp = frame.arp()) {
    HandleArp(*arp);
    return;
  }
  const Ipv4Packet* ip = frame.ip();
  if (ip == nullptr) {
    return;
  }
  // Accept unicast-to-us and broadcast.
  if (!ip->dst.IsBroadcast() && !ip_.IsZero() && ip->dst != ip_) {
    return;
  }
  if (ip->IsFragment()) {
    auto whole = reassembler_.Add(*ip);
    if (!whole.has_value()) {
      return;
    }
    HandleIp(*whole);
    return;
  }
  HandleIp(*ip);
}

void EtherStack::HandleArp(const ArpPacket& arp) {
  // Opportunistic learning from both requests and replies.
  if (!arp.sender_ip.IsZero()) {
    arp_table_[arp.sender_ip] = arp.sender_mac;
    // Flush any packets queued on this resolution.
    auto pending = arp_pending_.find(arp.sender_ip);
    if (pending != arp_pending_.end()) {
      std::vector<Ipv4Packet> queued = std::move(pending->second);
      arp_pending_.erase(pending);
      for (Ipv4Packet& p : queued) {
        Transmit(arp.sender_mac, std::move(p));
      }
    }
  }
  if (arp.is_request && !ip_.IsZero() && arp.target_ip == ip_) {
    ArpPacket reply;
    reply.is_request = false;
    reply.sender_mac = mac();
    reply.sender_ip = ip_;
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    EthernetFrame frame;
    frame.dst = arp.sender_mac;
    frame.src = mac();
    frame.ethertype = kEtherTypeArp;
    frame.payload = reply;
    netif_->Output(frame);
  }
}

void EtherStack::HandleIp(const Ipv4Packet& packet) {
  ++ip_rx_;
  if (const IcmpMessage* icmp = std::get_if<IcmpMessage>(&packet.l4)) {
    HandleIcmp(packet, *icmp);
    return;
  }
  if (const UdpDatagram* udp = std::get_if<UdpDatagram>(&packet.l4)) {
    auto it = udp_ports_.find(udp->dst_port);
    if (it != udp_ports_.end()) {
      ++it->second->received_;
      if (it->second->recv_cb_) {
        it->second->recv_cb_(packet.src, udp->src_port, udp->payload);
      }
    }
    return;
  }
  if (const TcpSegment* tcp = std::get_if<TcpSegment>(&packet.l4)) {
    ConnKey key{packet.src.value, tcp->src_port, tcp->dst_port};
    auto conn_it = conns_.find(key);
    if (conn_it != conns_.end()) {
      conn_it->second->OnSegment(*tcp);
      return;
    }
    // New connection: must be a SYN to a listener.
    if (tcp->syn && !tcp->ack_flag) {
      auto listener_it = listeners_.find(tcp->dst_port);
      if (listener_it != listeners_.end()) {
        TcpConn* conn = CreateConn(packet.src, tcp->src_port, tcp->dst_port);
        conn->StartPassiveOpen(*tcp, listener_it->second->accept_cb_);
        return;
      }
    }
    // No matching connection/listener: RST (unless this *was* an RST).
    if (!tcp->rst) {
      Ipv4Packet rst_packet;
      rst_packet.src = ip_;
      rst_packet.dst = packet.src;
      rst_packet.proto = kIpProtoTcp;
      TcpSegment rst;
      rst.src_port = tcp->dst_port;
      rst.dst_port = tcp->src_port;
      rst.rst = true;
      rst.seq = tcp->ack;
      // Echo an ack covering the offending segment so a SYN_SENT receiver
      // can prove the reset is genuine (its RST validation demands it).
      rst.ack_flag = true;
      rst.ack = tcp->seq + static_cast<uint32_t>(tcp->payload.size()) +
                (tcp->syn ? 1 : 0) + (tcp->fin ? 1 : 0);
      rst_packet.l4 = rst;
      SendIp(std::move(rst_packet));
    }
  }
}

void EtherStack::HandleIcmp(const Ipv4Packet& packet, const IcmpMessage& icmp) {
  if (icmp.is_echo_request) {
    if (vcpu_ != nullptr) {
      CpuScope cpu_scope(KITE_CPU_CATEGORY("net/stack"));
      vcpu_->Charge(params_.icmp_reply_cost);
    }
    Ipv4Packet reply;
    reply.src = ip_;
    reply.dst = packet.src;
    reply.proto = kIpProtoIcmp;
    IcmpMessage echo = icmp;
    echo.is_echo_request = false;
    reply.l4 = std::move(echo);
    SendIp(std::move(reply));
    return;
  }
  if (icmp.ident != ping_ident_) {
    return;
  }
  auto it = pending_pings_.find(icmp.sequence);
  if (it == pending_pings_.end() || it->second->done) {
    return;
  }
  auto pending = it->second;
  pending->done = true;
  pending_pings_.erase(it);
  pending->cb(true, executor_->Now() - pending->sent_at);
}

TcpListener* EtherStack::ListenTcp(uint16_t port, std::function<void(TcpConn*)> accept_cb) {
  KITE_CHECK(listeners_.count(port) == 0) << "port " << port << " already listening";
  auto listener = std::unique_ptr<TcpListener>(new TcpListener());
  listener->port_ = port;
  listener->accept_cb_ = std::move(accept_cb);
  TcpListener* raw = listener.get();
  listeners_[port] = std::move(listener);
  return raw;
}

void EtherStack::CloseListener(uint16_t port) { listeners_.erase(port); }

TcpConn* EtherStack::ConnectTcp(Ipv4Addr dst, uint16_t dst_port,
                                std::function<void(TcpConn*)> connected_cb) {
  uint16_t local_port = AllocEphemeralPort();
  TcpConn* conn = CreateConn(dst, dst_port, local_port);
  conn->StartActiveOpen(std::move(connected_cb));
  return conn;
}

TcpConn* EtherStack::CreateConn(Ipv4Addr peer_ip, uint16_t peer_port, uint16_t local_port) {
  auto conn =
      std::unique_ptr<TcpConn>(new TcpConn(this, peer_ip, peer_port, local_port));
  TcpConn* raw = conn.get();
  conns_[ConnKey{peer_ip.value, peer_port, local_port}] = std::move(conn);
  return raw;
}

EtherStack::TcpFlowLedger* EtherStack::LedgerFor(Ipv4Addr peer_ip,
                                                 uint16_t peer_port,
                                                 uint16_t local_port) {
  return &tcp_ledgers_[TcpFlowKey{peer_ip.value, peer_port, local_port}];
}

void EtherStack::RemoveConn(TcpConn* conn) {
  ConnKey key{conn->peer_ip().value, conn->peer_port(), conn->local_port()};
  auto it = conns_.find(key);
  if (it == conns_.end() || it->second.get() != conn) {
    return;
  }
  // Defer destruction: the caller may be inside one of the connection's own
  // callbacks.
  std::unique_ptr<TcpConn> doomed = std::move(it->second);
  conns_.erase(it);
  executor_->Post(KITE_POST_SITE("stack/conn-reap"),
                  [doomed = std::shared_ptr<TcpConn>(std::move(doomed))] {});
}

}  // namespace kite
