#include "src/net/bridge.h"

#include <algorithm>

#include "src/base/log.h"

namespace kite {

void Bridge::AddIf(NetIf* netif) {
  KITE_CHECK(!HasIf(netif));
  ports_.push_back(netif);
  netif->SetInputHandler([this, netif](const EthernetFrame& frame) { Input(netif, frame); });
}

void Bridge::RemoveIf(NetIf* netif) {
  auto it = std::find(ports_.begin(), ports_.end(), netif);
  if (it == ports_.end()) {
    return;
  }
  ports_.erase(it);
  queues_.erase(netif);
  netif->SetInputHandler(nullptr);
  // Flush FDB entries pointing at the removed port.
  for (auto fdb_it = fdb_.begin(); fdb_it != fdb_.end();) {
    if (fdb_it->second == netif) {
      fdb_it = fdb_.erase(fdb_it);
    } else {
      ++fdb_it;
    }
  }
}

bool Bridge::HasIf(const NetIf* netif) const {
  return std::find(ports_.begin(), ports_.end(), netif) != ports_.end();
}

NetIf* Bridge::LookupFdb(MacAddr mac) const {
  auto it = fdb_.find(mac);
  return it == fdb_.end() ? nullptr : it->second;
}

void Bridge::EnablePortQueue(Executor* executor, NetIf* port,
                             EgressQueueParams params,
                             std::unique_ptr<DropPolicy> policy) {
  KITE_CHECK(HasIf(port));
  queues_[port] =
      std::make_unique<EgressQueue>(executor, port, params, std::move(policy));
}

EgressQueue* Bridge::port_queue(NetIf* port) const {
  auto it = queues_.find(port);
  return it == queues_.end() ? nullptr : it->second.get();
}

uint64_t Bridge::queue_drops() const {
  uint64_t drops = 0;
  for (const auto& [port, queue] : queues_) {
    drops += queue->dropped();
  }
  return drops;
}

bool Bridge::SendOut(NetIf* port, const EthernetFrame& frame) {
  auto it = queues_.find(port);
  if (it == queues_.end()) {
    port->Output(frame);
    return true;
  }
  return it->second->Offer(frame);
}

void Bridge::Input(NetIf* ingress, const EthernetFrame& frame) {
  if (vcpu_ != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("net/bridge"));
    vcpu_->Charge(forward_cost_);
  }
  // Learn the source.
  fdb_[frame.src] = ingress;

  // Local sink check (driver domain's own address on the physical port).
  if (local_sink_ && frame.dst == local_mac_) {
    local_sink_(frame);
    return;
  }

  if (!frame.dst.IsBroadcast()) {
    auto it = fdb_.find(frame.dst);
    if (it != fdb_.end()) {
      if (it->second != ingress && it->second->up()) {
        // Count only frames the egress queue admitted: a drop-tail rejection
        // already shows up in queue_drops(), and a frame must not appear in
        // both tallies.
        if (SendOut(it->second, frame)) {
          ++forwarded_;
        }
      }
      return;
    }
  }
  // Broadcast or unknown unicast: flood all other up ports (plus the local
  // sink for broadcasts, so the driver domain sees ARP etc.).
  ++flooded_;
  if (local_sink_ && frame.dst.IsBroadcast()) {
    local_sink_(frame);
  }
  for (NetIf* port : ports_) {
    if (port != ingress && port->up()) {
      SendOut(port, frame);
    }
  }
}

}  // namespace kite
