// TCP: a reliable byte stream with honest loss behaviour, sufficient for the
// paper's macrobenchmarks (HTTP, Redis, memcached, MySQL traffic) and for
// overload scenarios where queues actually drop.
//
// Implemented: three-way handshake, cumulative ACKs with coalescing,
// out-of-order reassembly at the receiver, slow start + AIMD congestion
// avoidance (RFC 5681), fast retransmit / NewReno fast recovery on three
// duplicate ACKs, SRTT/RTTVAR-based retransmission timeout with Karn's rule
// and exponential backoff (RFC 6298), FIN/RST teardown. Not implemented:
// SACK, ECN, window scaling beyond the fixed 256 KiB receive window.
#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "src/net/stack.h"

namespace kite {

inline constexpr uint32_t kTcpWindowBytes = 256 * 1024;

// Connection state, exposed for the table-driven protocol tests.
enum class TcpState {
  kSynSent,      // Active open, SYN out.
  kSynReceived,  // Passive open, SYN/ACK out.
  kEstablished,
  kFinSent,  // Our FIN sent, awaiting ACK (and possibly peer FIN).
  kClosed,
};

const char* TcpStateName(TcpState state);

class TcpListener {
 public:
  uint16_t port() const { return port_; }

 private:
  friend class EtherStack;
  uint16_t port_ = 0;
  std::function<void(TcpConn*)> accept_cb_;
};

class TcpConn {
 public:
  using DataFn = std::function<void(std::span<const uint8_t>)>;

  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  // Delivery of received in-order payload bytes.
  void SetDataCallback(DataFn fn) { data_cb_ = std::move(fn); }
  // Fired once when the peer closes (FIN/RST) or the connection aborts.
  void SetCloseCallback(std::function<void()> fn) { close_cb_ = std::move(fn); }

  // Queues bytes for transmission.
  void Send(Buffer data);
  void Send(std::span<const uint8_t> data) { Send(Buffer(data.begin(), data.end())); }

  // Graceful close: FIN after all queued data.
  void Close();
  // Abortive close: RST now.
  void Abort();

  TcpState state() const { return state_; }
  bool connected() const { return state_ == TcpState::kEstablished; }
  bool closed() const { return state_ == TcpState::kClosed; }
  size_t send_queue_bytes() const { return send_buf_.size(); }

  Ipv4Addr peer_ip() const { return peer_ip_; }
  uint16_t peer_port() const { return peer_port_; }
  uint16_t local_port() const { return local_port_; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  // Payload bytes the peer has cumulatively acknowledged.
  uint64_t bytes_acked() const { return bytes_acked_; }

  // --- Congestion state (read-only; the protocol tests trace these). ---
  uint32_t cwnd() const { return cwnd_; }
  uint32_t ssthresh() const { return ssthresh_; }
  bool in_fast_recovery() const { return in_fast_recovery_; }
  // Smoothed RTT; zero until the first valid (unretransmitted) sample.
  SimDuration srtt() const { return srtt_; }
  SimDuration rttvar() const { return rttvar_; }
  // Current retransmission timeout, including any exponential backoff.
  SimDuration rto() const { return rto_; }
  // Retransmission *timeouts* fired (each triggers go-back-N).
  uint32_t retransmits() const { return retransmits_; }
  // Fast-retransmit events (3 dup-ACKs → resend head without waiting).
  uint32_t fast_retransmits() const { return fast_retransmits_; }

  // Liveness guard for deferred work (e.g. a server response scheduled at a
  // CPU-completion time): *guard is true while this object exists.
  std::shared_ptr<const bool> AliveGuard() const { return alive_; }

 private:
  friend class EtherStack;

  TcpConn(EtherStack* stack, Ipv4Addr peer_ip, uint16_t peer_port, uint16_t local_port);

  void StartActiveOpen(std::function<void(TcpConn*)> connected_cb);
  void StartPassiveOpen(const TcpSegment& syn, std::function<void(TcpConn*)> accept_cb);
  void OnSegment(const TcpSegment& seg);
  void OnAck(const TcpSegment& seg);
  void OnDupAck();
  // Returns false if a data callback closed the connection.
  bool HandleData(const TcpSegment& seg);
  void DeliverInOrder(std::span<const uint8_t> payload);
  void DrainOoo();
  void HandlePeerFin();
  void PumpSend();
  // Resends one MSS starting at snd_una_ without touching snd_nxt_ (the fast
  // retransmit / NewReno partial-ACK hole repair).
  void RetransmitHead();
  void EmitSegment(TcpSegment&& seg);
  void SendAckNow();
  void ScheduleDelayedAck();
  void ArmRto();
  void OnRto(uint64_t generation);
  void UpdateRtt(SimDuration sample);
  // RTO from the current SRTT/RTTVAR estimate (RFC 6298 §2), clamped to
  // [min_rto, max_rto]; falls back to initial_rto before the first sample.
  // Called on every new cumulative ACK — this is what cancels backoff.
  void RecomputeRto();
  void UpdateFlowGauges();
  void EnterClosed(bool deliver_close);

  // Sequence octets outstanding (includes SYN/FIN bits).
  uint32_t FlightSize() const;

  EtherStack* stack_;
  Ipv4Addr peer_ip_;
  uint16_t peer_port_;
  uint16_t local_port_;
  TcpState state_ = TcpState::kSynSent;

  // Send side. send_buf_ front corresponds to sequence snd_una_.
  std::deque<uint8_t> send_buf_;
  uint32_t snd_una_ = 0;
  uint32_t snd_nxt_ = 0;
  uint32_t snd_max_ = 0;  // Highest sequence ever sent (new vs. retransmit).
  uint32_t peer_window_ = kTcpWindowBytes;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  // True once a FIN has been emitted at least once, even if a go-back-N
  // rewind cleared fin_sent_: a receiver that held the tail + FIN out of
  // order may ack past snd_max_ before the FIN is re-emitted.
  bool fin_ever_sent_ = false;

  // Congestion control (byte-counted, RFC 5681).
  uint32_t cwnd_ = 0;      // Initialized from TcpParams in the constructor.
  uint32_t ssthresh_ = kTcpWindowBytes;
  uint32_t dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  uint32_t recover_ = 0;  // snd_nxt_ at loss detection (NewReno full-ACK bar).

  // RTT estimation (RFC 6298). One probe in flight at a time; Karn's rule
  // invalidates the probe on any retransmission.
  bool srtt_valid_ = false;
  SimDuration srtt_{};
  SimDuration rttvar_{};
  bool rtt_probe_armed_ = false;
  uint32_t rtt_probe_end_ = 0;  // Sample completes when snd_una_ reaches this.
  SimTime rtt_probe_sent_;

  // Receive side.
  uint32_t rcv_nxt_ = 0;
  bool peer_fin_received_ = false;
  int ack_pending_segments_ = 0;
  bool delayed_ack_armed_ = false;

  // Out-of-order reassembly, keyed by segment start sequence. A buffered FIN
  // rides on the segment that carries it. Bounded by the receive window.
  struct OooSeg {
    Buffer data;
    bool fin = false;
  };
  std::map<uint32_t, OooSeg> ooo_;
  size_t ooo_bytes_ = 0;

  // Retransmission timer.
  uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;
  SimDuration rto_;  // Initialized from TcpParams in the constructor.
  uint32_t retransmits_ = 0;       // Lifetime stat (exported as a gauge).
  uint32_t fast_retransmits_ = 0;  // Lifetime stat (exported as a gauge).
  // Consecutive RTO fires with no forward progress; this — not the lifetime
  // stat — is what max_retransmits bounds. Reset whenever snd_una advances.
  uint32_t rto_retries_ = 0;

  // Timer lifetime guard: executor events capture this flag; a destroyed
  // connection flips it so stale timers become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  DataFn data_cb_;
  std::function<void()> close_cb_;
  std::function<void(TcpConn*)> connected_cb_;
  bool close_delivered_ = false;

  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t bytes_acked_ = 0;

  // Lifetime flow ledger owned by the stack (survives this connection).
  EtherStack::TcpFlowLedger* ledger_ = nullptr;

  // Per-flow gauges (only when StackParams::per_flow_metrics).
  Gauge* g_cwnd_ = nullptr;
  Gauge* g_ssthresh_ = nullptr;
  Gauge* g_srtt_ = nullptr;
  Gauge* g_retransmits_ = nullptr;
  Gauge* g_fast_retransmits_ = nullptr;
};

}  // namespace kite

#endif  // SRC_NET_TCP_H_
