// TCP-lite: a reliable byte stream sufficient for the paper's
// macrobenchmarks (HTTP, Redis, memcached, MySQL traffic).
//
// Implemented: three-way handshake, cumulative ACKs with coalescing,
// go-back-N retransmission on timeout, fixed 256 KiB windows, FIN/RST
// teardown. Not implemented (not needed on a lossless-unless-overloaded
// point-to-point link): SACK, congestion control beyond the fixed window,
// out-of-order reassembly.
#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "src/net/stack.h"

namespace kite {

inline constexpr uint32_t kTcpWindowBytes = 256 * 1024;

class TcpListener {
 public:
  uint16_t port() const { return port_; }

 private:
  friend class EtherStack;
  uint16_t port_ = 0;
  std::function<void(TcpConn*)> accept_cb_;
};

class TcpConn {
 public:
  using DataFn = std::function<void(std::span<const uint8_t>)>;

  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  // Delivery of received in-order payload bytes.
  void SetDataCallback(DataFn fn) { data_cb_ = std::move(fn); }
  // Fired once when the peer closes (FIN/RST) or the connection aborts.
  void SetCloseCallback(std::function<void()> fn) { close_cb_ = std::move(fn); }

  // Queues bytes for transmission.
  void Send(Buffer data);
  void Send(std::span<const uint8_t> data) { Send(Buffer(data.begin(), data.end())); }

  // Graceful close: FIN after all queued data.
  void Close();
  // Abortive close: RST now.
  void Abort();

  bool connected() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  size_t send_queue_bytes() const { return send_buf_.size(); }

  Ipv4Addr peer_ip() const { return peer_ip_; }
  uint16_t peer_port() const { return peer_port_; }
  uint16_t local_port() const { return local_port_; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint32_t retransmits() const { return retransmits_; }

  // Liveness guard for deferred work (e.g. a server response scheduled at a
  // CPU-completion time): *guard is true while this object exists.
  std::shared_ptr<const bool> AliveGuard() const { return alive_; }

 private:
  friend class EtherStack;

  enum class State {
    kSynSent,      // Active open, SYN out.
    kSynReceived,  // Passive open, SYN/ACK out.
    kEstablished,
    kFinSent,  // Our FIN sent, awaiting ACK (and possibly peer FIN).
    kClosed,
  };

  TcpConn(EtherStack* stack, Ipv4Addr peer_ip, uint16_t peer_port, uint16_t local_port);

  void StartActiveOpen(std::function<void(TcpConn*)> connected_cb);
  void StartPassiveOpen(const TcpSegment& syn, std::function<void(TcpConn*)> accept_cb);
  void OnSegment(const TcpSegment& seg);
  void PumpSend();
  void EmitSegment(TcpSegment&& seg);
  void SendAckNow();
  void ScheduleDelayedAck();
  void ArmRto();
  void OnRto(uint64_t generation);
  void EnterClosed(bool deliver_close);

  EtherStack* stack_;
  Ipv4Addr peer_ip_;
  uint16_t peer_port_;
  uint16_t local_port_;
  State state_ = State::kSynSent;

  // Send side. send_buf_ front corresponds to sequence snd_una_.
  std::deque<uint8_t> send_buf_;
  uint32_t snd_una_ = 0;
  uint32_t snd_nxt_ = 0;
  uint32_t peer_window_ = kTcpWindowBytes;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;

  // Receive side.
  uint32_t rcv_nxt_ = 0;
  bool peer_fin_received_ = false;
  int ack_pending_segments_ = 0;
  bool delayed_ack_armed_ = false;

  // Retransmission.
  uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;
  SimDuration rto_ = Millis(10);
  uint32_t retransmits_ = 0;

  // Timer lifetime guard: executor events capture this flag; a destroyed
  // connection flips it so stale timers become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  DataFn data_cb_;
  std::function<void()> close_cb_;
  std::function<void(TcpConn*)> connected_cb_;
  bool close_delivered_ = false;

  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace kite

#endif  // SRC_NET_TCP_H_
