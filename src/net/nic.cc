#include "src/net/nic.h"

#include "src/base/log.h"
#include "src/hv/domain.h"

namespace kite {

void NicNetIf::Output(const EthernetFrame& frame) {
  CountTx(frame);
  nic_->Transmit(frame);
}

Nic::Nic(Executor* executor, std::string bdf, std::string ifname, MacAddr mac,
         NicParams params)
    : PciDevice(std::move(bdf), "10GbE NIC"),
      executor_(executor),
      params_(params),
      netif_(std::move(ifname), mac, this) {}

Nic::~Nic() {
  if (peer_ != nullptr) {
    peer_->peer_ = nullptr;
  }
}

void Nic::ConnectBackToBack(Nic* a, Nic* b) {
  KITE_CHECK(a->peer_ == nullptr && b->peer_ == nullptr);
  a->peer_ = b;
  b->peer_ = a;
}

void Nic::Disconnect(Nic* a) {
  if (a->peer_ != nullptr) {
    a->peer_->peer_ = nullptr;
    a->peer_ = nullptr;
  }
}

void Nic::OnAssigned(Domain* owner) { vcpu_ = owner->vcpu(0); }

void Nic::OnUnassigned() { vcpu_ = nullptr; }

void Nic::SetTxDropPolicy(std::unique_ptr<DropPolicy> policy) {
  tx_policy_ = policy != nullptr ? std::move(policy)
                                 : std::make_unique<DropTailPolicy>();
}

void Nic::SetRxDropPolicy(std::unique_ptr<DropPolicy> policy) {
  rx_policy_ = policy != nullptr ? std::move(policy)
                                 : std::make_unique<DropTailPolicy>();
}

void Nic::Transmit(const EthernetFrame& frame) {
  if (peer_ == nullptr) {
    ++tx_dropped_;
    return;
  }
  // Bounded transmit queue: if the policy rejects the frame (drop-tail: the
  // backlog exceeds the ring), drop — what a real NIC does under overload.
  const SimTime now = executor_->Now();
  if (tx_policy_->ShouldDrop(tx_inflight_, params_.tx_queue_frames,
                             frame.WireBytes())) {
    ++tx_dropped_;
    return;
  }
  if (vcpu_ != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("net/nic"));
    vcpu_->Charge(params_.tx_frame_cost);
  }
  const double bits = static_cast<double>(frame.WireBytes()) * 8.0;
  const SimDuration wire_time = Nanos(static_cast<int64_t>(bits / params_.gbps));
  SimTime start = tx_free_at_ > now ? tx_free_at_ : now;
  tx_free_at_ = start + wire_time;
  ++tx_inflight_;
  const SimTime arrival = tx_free_at_ + params_.propagation;
  Nic* peer = peer_;
  executor_->PostAt(arrival, KITE_POST_SITE("nic/wire-arrival"), [this, peer, frame] {
    --tx_inflight_;
    peer->Arrive(frame);
  });
}

void Nic::Arrive(EthernetFrame frame) {
  if (faults_ != nullptr) {
    if (faults_->ShouldFail(FaultSite::kNicLoss)) {
      ++rx_lost_;  // Lost on the wire: the receive side never sees it.
      return;
    }
    if (faults_->ShouldFail(FaultSite::kNicCorrupt)) {
      ++rx_fcs_errors_;  // Bad FCS: hardware discards before the ring.
      return;
    }
  }
  if (rx_policy_->ShouldDrop(rx_queue_.size(), params_.rx_queue_frames,
                             frame.WireBytes())) {
    ++rx_dropped_;
    return;
  }
  rx_queue_.push_back(std::move(frame));
  ScheduleRxDrain();
}

void Nic::ScheduleRxDrain() {
  if (rx_drain_scheduled_) {
    return;
  }
  rx_drain_scheduled_ = true;
  executor_->PostAfter(params_.irq_latency, KITE_POST_SITE("nic/rx-irq"),
                       [this] { DrainRx(); });
}

void Nic::DrainRx() {
  rx_drain_scheduled_ = false;
  // NAPI-style batch: drain everything queued; new arrivals during the drain
  // are picked up in this loop as well since we re-check the queue.
  while (!rx_queue_.empty()) {
    EthernetFrame frame = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    if (vcpu_ != nullptr) {
      CpuScope cpu_scope(KITE_CPU_CATEGORY("net/nic"));
      vcpu_->Charge(params_.rx_frame_cost);
    }
    ++rx_delivered_;
    netif_.DeliverInput(frame);
  }
}

}  // namespace kite
