#include "src/services/dhcp.h"

#include "src/base/log.h"

namespace kite {
namespace {

constexpr uint32_t kDhcpMagic = 0x63825363;
constexpr uint16_t kServerPort = 67;
constexpr uint16_t kClientPort = 68;

enum DhcpOption : uint8_t {
  kOptSubnetMask = 1,
  kOptRequestedIp = 50,
  kOptLeaseTime = 51,
  kOptMessageType = 53,
  kOptServerId = 54,
  kOptEnd = 255,
};

}  // namespace

Buffer SerializeDhcp(const DhcpMessage& msg) {
  Buffer out;
  ByteWriter w(&out);
  w.U8(msg.is_request ? 1 : 2);  // op: BOOTREQUEST / BOOTREPLY.
  w.U8(1);                       // htype: Ethernet.
  w.U8(6);                       // hlen.
  w.U8(0);                       // hops.
  w.U32(msg.xid);
  w.U16(0);  // secs.
  w.U16(0x8000);  // flags: broadcast.
  w.U32(msg.ciaddr.value);
  w.U32(msg.yiaddr.value);
  w.U32(msg.siaddr.value);
  w.U32(0);  // giaddr.
  w.Raw(msg.chaddr.octets);
  w.Zeros(10);   // chaddr padding.
  w.Zeros(64);   // sname.
  w.Zeros(128);  // file.
  w.U32(kDhcpMagic);
  // Options.
  w.U8(kOptMessageType);
  w.U8(1);
  w.U8(static_cast<uint8_t>(msg.type));
  if (!msg.server_id.IsZero()) {
    w.U8(kOptServerId);
    w.U8(4);
    w.U32(msg.server_id.value);
  }
  if (!msg.requested_ip.IsZero()) {
    w.U8(kOptRequestedIp);
    w.U8(4);
    w.U32(msg.requested_ip.value);
  }
  if (msg.lease_seconds != 0) {
    w.U8(kOptLeaseTime);
    w.U8(4);
    w.U32(msg.lease_seconds);
  }
  if (!msg.subnet_mask.IsZero()) {
    w.U8(kOptSubnetMask);
    w.U8(4);
    w.U32(msg.subnet_mask.value);
  }
  w.U8(kOptEnd);
  return out;
}

std::optional<DhcpMessage> ParseDhcp(std::span<const uint8_t> data) {
  if (data.size() < 240) {
    return std::nullopt;
  }
  ByteReader r(data);
  DhcpMessage msg;
  const uint8_t op = r.U8();
  if (op != 1 && op != 2) {
    return std::nullopt;
  }
  msg.is_request = op == 1;
  if (r.U8() != 1 || r.U8() != 6) {
    return std::nullopt;
  }
  r.U8();  // hops.
  msg.xid = r.U32();
  r.U16();  // secs.
  r.U16();  // flags.
  msg.ciaddr.value = r.U32();
  msg.yiaddr.value = r.U32();
  msg.siaddr.value = r.U32();
  r.U32();  // giaddr.
  r.Raw(msg.chaddr.octets);
  r.Skip(10 + 64 + 128);
  if (r.U32() != kDhcpMagic) {
    return std::nullopt;
  }
  // Options.
  while (r.remaining() > 0) {
    const uint8_t opt = r.U8();
    if (opt == kOptEnd) {
      break;
    }
    if (opt == 0) {  // Pad.
      continue;
    }
    const uint8_t len = r.U8();
    switch (opt) {
      case kOptMessageType:
        msg.type = static_cast<DhcpMessageType>(r.U8());
        break;
      case kOptServerId:
        msg.server_id.value = r.U32();
        break;
      case kOptRequestedIp:
        msg.requested_ip.value = r.U32();
        break;
      case kOptLeaseTime:
        msg.lease_seconds = r.U32();
        break;
      case kOptSubnetMask:
        msg.subnet_mask.value = r.U32();
        break;
      default:
        r.Skip(len);
        break;
    }
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return msg;
}

// --- DhcpServer. ---

DhcpServer::DhcpServer(EtherStack* stack, DhcpServerConfig config)
    : stack_(stack), config_(config) {
  if (config_.server_ip.IsZero()) {
    config_.server_ip = stack->ip();
  }
  sock_ = stack_->OpenUdp();
  KITE_CHECK(sock_->Bind(kServerPort));
  sock_->SetRecvCallback([this](Ipv4Addr src, uint16_t src_port, const Buffer& payload) {
    OnMessage(src, src_port, payload);
  });
}

std::optional<Ipv4Addr> DhcpServer::AllocateFor(MacAddr mac) {
  auto existing = leases_.find(mac);
  if (existing != leases_.end()) {
    return existing->second;
  }
  for (int i = 0; i < config_.pool_size; ++i) {
    Ipv4Addr candidate{config_.pool_start.value + static_cast<uint32_t>(i)};
    auto offer_it = offered_.find(candidate.value);
    const bool offered_to_other = offer_it != offered_.end() && offer_it->second != mac;
    bool leased = false;
    for (const auto& [m, ip] : leases_) {
      if (ip == candidate) {
        leased = true;
        break;
      }
    }
    if (!leased && !offered_to_other) {
      return candidate;
    }
  }
  return std::nullopt;
}

DhcpServer::~DhcpServer() { *alive_ = false; }

void DhcpServer::OnMessage(Ipv4Addr src, uint16_t src_port, const Buffer& payload) {
  auto msg = ParseDhcp(payload);
  if (!msg.has_value() || !msg->is_request) {
    return;
  }
  if (stack_->vcpu() != nullptr) {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("app/workload"));
    stack_->vcpu()->Charge(config_.per_message_cost);
  }
  DhcpMessage reply;
  reply.is_request = false;
  reply.xid = msg->xid;
  reply.chaddr = msg->chaddr;
  reply.siaddr = config_.server_ip;
  reply.server_id = config_.server_ip;
  reply.subnet_mask = Ipv4Addr{kSlash24};
  reply.lease_seconds = config_.lease_seconds;

  switch (msg->type) {
    case DhcpMessageType::kDiscover: {
      auto ip = AllocateFor(msg->chaddr);
      if (!ip.has_value()) {
        return;  // Pool exhausted: silence (clients retry).
      }
      offered_[ip->value] = msg->chaddr;
      reply.type = DhcpMessageType::kOffer;
      reply.yiaddr = *ip;
      ++offers_;
      Reply(reply);
      break;
    }
    case DhcpMessageType::kRequest: {
      const Ipv4Addr want = msg->requested_ip.IsZero() ? msg->ciaddr : msg->requested_ip;
      auto offer_it = offered_.find(want.value);
      const bool ours = offer_it != offered_.end() && offer_it->second == msg->chaddr;
      const bool renewing =
          leases_.count(msg->chaddr) != 0 && leases_[msg->chaddr] == want;
      if (ours || renewing) {
        offered_.erase(want.value);
        leases_[msg->chaddr] = want;
        reply.type = DhcpMessageType::kAck;
        reply.yiaddr = want;
        ++acks_;
      } else {
        reply.type = DhcpMessageType::kNak;
        ++naks_;
      }
      Reply(reply);
      break;
    }
    case DhcpMessageType::kRelease: {
      leases_.erase(msg->chaddr);
      break;
    }
    default:
      break;
  }
}

void DhcpServer::Reply(const DhcpMessage& reply) {
  // Clients without an address listen on the broadcast. The reply leaves at
  // the CPU-completion time of the daemon's processing.
  const SimTime when = stack_->vcpu() != nullptr ? stack_->vcpu()->free_at()
                                                 : stack_->executor()->Now();
  stack_->executor()->PostAt(when, KITE_POST_SITE("dhcp/reply"),
                             [this, alive = alive_, bytes = SerializeDhcp(reply)] {
    if (*alive) {
      sock_->SendTo(Ipv4Addr::Broadcast(), kClientPort, bytes);
    }
  });
}

// --- PerfDhcp. ---

PerfDhcp::PerfDhcp(EtherStack* client, int count, SimDuration spacing)
    : client_(client), count_(count), spacing_(spacing) {}

void PerfDhcp::Run(std::function<void(const PerfDhcpResult&)> done) {
  done_ = std::move(done);
  sock_ = client_->OpenUdp();
  KITE_CHECK(sock_->Bind(kClientPort));
  sock_->SetRecvCallback(
      [this](Ipv4Addr, uint16_t, const Buffer& payload) { OnReply(payload); });
  StartClient(0);
}

void PerfDhcp::StartClient(int index) {
  if (index >= count_) {
    return;
  }
  ClientState state;
  state.mac = MacAddr::FromId(0x500000u + static_cast<uint32_t>(index));
  state.xid = 0x44484350u + static_cast<uint32_t>(index);
  state.discover_at = client_->executor()->Now();
  clients_[state.xid] = state;
  ++started_;

  DhcpMessage discover;
  discover.is_request = true;
  discover.type = DhcpMessageType::kDiscover;
  discover.xid = state.xid;
  discover.chaddr = state.mac;
  sock_->SendTo(Ipv4Addr::Broadcast(), kServerPort, SerializeDhcp(discover));

  client_->executor()->PostAfter(spacing_, KITE_POST_SITE("dhcp/client-stagger"),
                                 [this, index] { StartClient(index + 1); });
}

void PerfDhcp::OnReply(const Buffer& payload) {
  auto msg = ParseDhcp(payload);
  if (!msg.has_value() || msg->is_request) {
    return;
  }
  auto it = clients_.find(msg->xid);
  if (it == clients_.end() || it->second.done) {
    return;
  }
  ClientState& state = it->second;
  const SimTime now = client_->executor()->Now();
  if (msg->type == DhcpMessageType::kOffer && !state.got_offer) {
    state.got_offer = true;
    state.offered = msg->yiaddr;
    result_.discover_offer_ms.Add((now - state.discover_at).ms());
    state.request_at = now;
    DhcpMessage request;
    request.is_request = true;
    request.type = DhcpMessageType::kRequest;
    request.xid = state.xid;
    request.chaddr = state.mac;
    request.requested_ip = state.offered;
    request.server_id = msg->server_id;
    sock_->SendTo(Ipv4Addr::Broadcast(), kServerPort, SerializeDhcp(request));
    return;
  }
  if (msg->type == DhcpMessageType::kAck && state.got_offer) {
    state.done = true;
    result_.request_ack_ms.Add((now - state.request_at).ms());
    FinishOne(true);
    return;
  }
  if (msg->type == DhcpMessageType::kNak) {
    state.done = true;
    FinishOne(false);
  }
}

void PerfDhcp::FinishOne(bool ok) {
  if (ok) {
    ++result_.completed;
  } else {
    ++result_.failed;
  }
  if (result_.completed + result_.failed >= count_ && !finished_) {
    finished_ = true;
    if (done_) {
      done_(result_);
    }
  }
}

}  // namespace kite
