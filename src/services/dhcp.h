// DHCP daemon service VM (paper §5.5): a real DHCP protocol implementation
// (RFC 2131 wire format: DISCOVER/OFFER/REQUEST/ACK over UDP 67/68
// broadcast) suitable for running unikernelized as a daemon VM, plus a
// perfdhcp-style load generator that measures Discover→Offer and
// Request→Ack latencies.
#ifndef SRC_SERVICES_DHCP_H_
#define SRC_SERVICES_DHCP_H_

#include <functional>
#include <map>
#include <memory>

#include "src/base/stats.h"
#include "src/net/stack.h"

namespace kite {

enum class DhcpMessageType : uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kDecline = 4,
  kAck = 5,
  kNak = 6,
  kRelease = 7,
};

struct DhcpMessage {
  bool is_request = true;  // BOOTREQUEST vs BOOTREPLY.
  uint32_t xid = 0;
  Ipv4Addr ciaddr;  // Client's current address.
  Ipv4Addr yiaddr;  // "Your" address (assigned).
  Ipv4Addr siaddr;  // Server address.
  MacAddr chaddr;
  DhcpMessageType type = DhcpMessageType::kDiscover;
  Ipv4Addr server_id;
  Ipv4Addr requested_ip;
  uint32_t lease_seconds = 0;
  Ipv4Addr subnet_mask;
};

// RFC 2131 wire codec (with the standard magic cookie and option encoding).
Buffer SerializeDhcp(const DhcpMessage& msg);
std::optional<DhcpMessage> ParseDhcp(std::span<const uint8_t> data);

struct DhcpServerConfig {
  Ipv4Addr pool_start = Ipv4Addr::FromOctets(10, 0, 0, 100);
  int pool_size = 150;
  Ipv4Addr server_ip;  // Defaults to the stack's IP.
  uint32_t lease_seconds = 3600;
  SimDuration per_message_cost = Micros(40);  // OpenDHCP processing.
};

class DhcpServer {
 public:
  DhcpServer(EtherStack* stack, DhcpServerConfig config = DhcpServerConfig{});
  ~DhcpServer();

  int leases_active() const { return static_cast<int>(leases_.size()); }
  uint64_t offers_sent() const { return offers_; }
  uint64_t acks_sent() const { return acks_; }
  uint64_t naks_sent() const { return naks_; }

 private:
  void OnMessage(Ipv4Addr src, uint16_t src_port, const Buffer& payload);
  std::optional<Ipv4Addr> AllocateFor(MacAddr mac);
  void Reply(const DhcpMessage& reply);

  EtherStack* stack_;
  DhcpServerConfig config_;
  std::unique_ptr<UdpSocket> sock_;
  // Guard for replies scheduled at CPU-completion time.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::map<MacAddr, Ipv4Addr> leases_;
  std::map<uint32_t, MacAddr> offered_;  // ip → mac (tentative offers).
  uint64_t offers_ = 0;
  uint64_t acks_ = 0;
  uint64_t naks_ = 0;
};

// perfdhcp: `count` simulated clients run the 4-way handshake; reports the
// Discover→Offer and Request→Ack delays (paper: ≈0.78 ms and ≈0.7 ms).
struct PerfDhcpResult {
  Stats discover_offer_ms;
  Stats request_ack_ms;
  int completed = 0;
  int failed = 0;
};

class PerfDhcp {
 public:
  PerfDhcp(EtherStack* client, int count = 100, SimDuration spacing = Millis(2));
  void Run(std::function<void(const PerfDhcpResult&)> done);
  bool finished() const { return finished_; }
  const PerfDhcpResult& result() const { return result_; }

 private:
  void StartClient(int index);
  void OnReply(const Buffer& payload);
  void FinishOne(bool ok);

  struct ClientState {
    MacAddr mac;
    uint32_t xid;
    SimTime discover_at;
    SimTime request_at;
    Ipv4Addr offered;
    bool got_offer = false;
    bool done = false;
  };

  EtherStack* client_;
  int count_;
  SimDuration spacing_;
  std::function<void(const PerfDhcpResult&)> done_;
  std::unique_ptr<UdpSocket> sock_;
  std::map<uint32_t, ClientState> clients_;  // By xid.
  int started_ = 0;
  bool finished_ = false;
  PerfDhcpResult result_;
};

}  // namespace kite

#endif  // SRC_SERVICES_DHCP_H_
