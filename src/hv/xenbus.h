// XenBus: the device-connection protocol layered on xenstore.
//
// Frontends and backends each expose a `state` node and step through the
// XenbusState machine (Initialising → InitWait → Initialised → Connected →
// Closing → Closed) while exchanging device parameters in their respective
// directories. This module provides the path conventions and typed state
// helpers used by netfront/netback and blkfront/blkback.
#ifndef SRC_HV_XENBUS_H_
#define SRC_HV_XENBUS_H_

#include <string>

#include "src/hv/xenstore.h"

namespace kite {

enum class XenbusState : int {
  kUnknown = 0,
  kInitialising = 1,
  kInitWait = 2,
  kInitialised = 3,
  kConnected = 4,
  kClosing = 5,
  kClosed = 6,
};

const char* XenbusStateName(XenbusState state);

// Path conventions (mirroring /local/domain/<d>/...).
std::string DomainPath(DomId dom);
// .../backend/<type>/<frontend-dom>/<devid>
std::string BackendPath(DomId backend_dom, const std::string& type, DomId frontend_dom,
                        int devid);
// .../device/<type>/<devid>
std::string FrontendPath(DomId frontend_dom, const std::string& type, int devid);

// Typed state accessors over a xenstore device directory.
class XenbusClient {
 public:
  XenbusClient(XenStore* store, DomId caller) : store_(store), caller_(caller) {}

  bool SwitchState(const std::string& device_path, XenbusState state);
  XenbusState ReadState(const std::string& device_path) const;

  XenStore* store() const { return store_; }
  DomId caller() const { return caller_; }

 private:
  XenStore* store_;
  DomId caller_;
};

}  // namespace kite

#endif  // SRC_HV_XENBUS_H_
