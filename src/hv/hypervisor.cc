#include "src/hv/hypervisor.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/hv/xenbus.h"

namespace kite {

Hypervisor::Hypervisor(Executor* executor, HvCosts costs, MetricRegistry* metrics,
                       EventTracer* tracer)
    : executor_(executor), costs_(costs), store_(executor), tracer_(tracer) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  hypercalls_ = metrics_->counter("hv", "hypercall", "issued");
  events_sent_ = metrics_->counter("hv", "evtchn", "sent");
  events_delivered_ = metrics_->counter("hv", "evtchn", "delivered");
  events_dropped_ = metrics_->counter("hv", "evtchn", "dropped");
  grant_maps_ = metrics_->counter("hv", "grant", "maps");
  grant_unmaps_ = metrics_->counter("hv", "grant", "unmaps");
  grant_copies_ = metrics_->counter("hv", "grant", "copies");
  grant_copy_bytes_ = metrics_->counter("hv", "grant", "copy_bytes");
  grant_copy_rejects_ = metrics_->counter("hv", "grant", "copy_rejects");
  forced_grant_revocations_ = metrics_->counter("hv", "grant", "forced_revocations");
  grant_map_fails_ = metrics_->counter("hv", "grant", "map_fails");
  events_coalesced_ = metrics_->counter("hv", "evtchn", "coalesced");
  events_vanished_ = metrics_->counter("hv", "evtchn", "vanished");
  pci_irqs_delivered_ = metrics_->counter("hv", "evtchn", "pci_irq_delivered");
  store_.set_op_latency(costs_.xenstore_op);
  // Dom0: the privileged administrative VM (runs xenstored).
  domains_.push_back(std::make_unique<Domain>(this, 0, "Domain-0", 1, 8192));
  domains_[0]->set_online(true);
  if (tracer_ != nullptr) {
    tracer_->SetProcessName(0, "Domain-0");
  }
}

Hypervisor::~Hypervisor() = default;

Domain* Hypervisor::CreateDomain(const std::string& name, int vcpus, int memory_mb) {
  DomId id = static_cast<DomId>(domains_.size());
  domains_.push_back(std::make_unique<Domain>(this, id, name, vcpus, memory_mb));
  Domain* dom = domains_.back().get();
  // Dom0 provisions the new domain's xenstore home.
  store_.Write(kDom0, dom->store_home() + "/name", name);
  store_.SetPermission(kDom0, dom->store_home(), id);
  if (tracer_ != nullptr) {
    // Name metadata is recorded even while tracing is disabled (it is cheap
    // and bounded by domain count), so enabling the tracer mid-run still
    // produces traces with named pid tracks.
    tracer_->SetProcessName(id, name);
    if (tracer_->enabled()) {
      tracer_->Instant(id, 0, "lifecycle", "domain_create", executor_->Now());
    }
  }
  if (recorder_ != nullptr) {
    recorder_->Record(id, FlightKind::kDomainCreated, 0, static_cast<uint64_t>(vcpus),
                      static_cast<uint64_t>(memory_mb));
  }
  return dom;
}

Domain* Hypervisor::domain(DomId id) {
  if (id < 0 || static_cast<size_t>(id) >= domains_.size()) {
    return nullptr;
  }
  return domains_[id].get();
}

void Hypervisor::DestroyDomain(DomId id) {
  KITE_CHECK(id != 0) << "cannot destroy Dom0";
  Domain* dom = domain(id);
  if (dom == nullptr) {
    return;
  }
  // Toolstack: walk every device this domain backed and step its state
  // through Closing → Closed, so surviving frontends *observe* backend death
  // instead of silently talking to a dangling ring. (The subtree removal
  // below also fires these watchers, but the explicit state writes are what
  // the xenbus protocol promises them.)
  const std::string backend_root = dom->store_home() + "/backend";
  if (auto types = store_.List(kDom0, backend_root); types.has_value()) {
    for (const std::string& type : *types) {
      const std::string type_dir = backend_root + "/" + type;
      auto fdoms = store_.List(kDom0, type_dir);
      if (!fdoms.has_value()) {
        continue;
      }
      for (const std::string& fdom : *fdoms) {
        auto devs = store_.List(kDom0, type_dir + "/" + fdom);
        if (!devs.has_value()) {
          continue;
        }
        for (const std::string& dev : *devs) {
          const std::string state = type_dir + "/" + fdom + "/" + dev + "/state";
          store_.WriteInt(kDom0, state, static_cast<int>(XenbusState::kClosing));
          store_.WriteInt(kDom0, state, static_cast<int>(XenbusState::kClosed));
        }
      }
    }
  }
  // Close all event channels (notifying nothing; peers see silence).
  for (size_t p = 0; p < dom->ports_.size(); ++p) {
    if (dom->ports_[p].allocated) {
      EventClose(dom, static_cast<EvtPort>(p));
    }
  }
  // Force-drop the mappings the dead domain held in every surviving grant
  // table — the mapper is gone and will never unmap gracefully. Owners can
  // then reclaim their pages with EndAccess.
  for (const auto& d : domains_) {
    if (d != nullptr && d->id() != id) {
      forced_grant_revocations_->Add(
          static_cast<uint64_t>(d->grant_table().RevokeMappingsFor(id)));
    }
  }
  // The dead domain's own table vanishes with it; mappings peers still hold
  // into it can never be unmapped gracefully (MappedGrant::Unmap sees the
  // dead alive-token and skips the hypercall), so they are force-dropped
  // here — without this the grant ledger would leak on every guest death.
  forced_grant_revocations_->Add(
      static_cast<uint64_t>(dom->grant_table().total_maps_outstanding()));
  // Release PCI devices.
  for (PciDevice* dev : pci_devices_) {
    if (dev->owner_ == dom) {
      UnassignPci(dev);
    }
  }
  // Drop the dead domain's watches so no in-flight xenstored event can call
  // back into its (about to be freed) drivers.
  store_.RemoveWatchesOwnedBy(id);
  // Remove the domain's xenstore subtree, notifying watchers of every node.
  store_.RemoveSubtree(kDom0, dom->store_home());
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(id, 0, "lifecycle", "domain_destroy", executor_->Now());
  }
  if (recorder_ != nullptr) {
    recorder_->Record(id, FlightKind::kDomainDestroyed);
  }
  domains_[id].reset();
}

int Hypervisor::open_port_count(DomId id) const {
  if (id < 0 || static_cast<size_t>(id) >= domains_.size() || domains_[id] == nullptr) {
    return 0;
  }
  int n = 0;
  for (const Domain::PortInfo& p : domains_[id]->ports_) {
    if (p.allocated) {
      ++n;
    }
  }
  return n;
}

int Hypervisor::live_domain_count() const {
  int n = 0;
  for (const auto& d : domains_) {
    if (d != nullptr) {
      ++n;
    }
  }
  return n;
}

std::vector<DomId> Hypervisor::live_domains() const {
  std::vector<DomId> ids;
  for (const auto& d : domains_) {
    if (d != nullptr) {
      ids.push_back(d->id());
    }
  }
  return ids;
}

std::vector<std::pair<EvtPort, DomId>> Hypervisor::BoundPorts(DomId id) const {
  std::vector<std::pair<EvtPort, DomId>> out;
  if (id < 0 || static_cast<size_t>(id) >= domains_.size() || domains_[id] == nullptr) {
    return out;
  }
  const auto& ports = domains_[id]->ports_;
  for (size_t p = 0; p < ports.size(); ++p) {
    if (ports[p].allocated && ports[p].peer_port != kInvalidPort) {
      out.emplace_back(static_cast<EvtPort>(p), ports[p].peer_dom);
    }
  }
  return out;
}

void Hypervisor::set_cpu_attribution(bool on) {
  cpu_attribution_ = on;
  if (!on) {
    return;  // Existing ledgers stay (cheap, already allocated); only future
             // domains are affected by turning the flag back off.
  }
  for (const auto& d : domains_) {
    if (d == nullptr) {
      continue;
    }
    for (int i = 0; i < d->vcpu_count(); ++i) {
      d->vcpu(i)->EnableAttribution();
    }
  }
}

void Hypervisor::Charge(Domain* dom, SimDuration cost, Vcpu* caller_vcpu, const char* op) {
  hypercalls_->Inc();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Complete(dom->id(), 0, "hypercall", op, executor_->Now(), cost);
  }
  (caller_vcpu != nullptr ? caller_vcpu : dom->vcpu(0))->Charge(cost);
}

Domain::PortInfo* Hypervisor::PortOf(Domain* dom, EvtPort port) {
  if (dom == nullptr || port < 0 || static_cast<size_t>(port) >= dom->ports_.size() ||
      !dom->ports_[port].allocated) {
    return nullptr;
  }
  return &dom->ports_[port];
}

EvtPort Hypervisor::EventAllocUnbound(Domain* caller, DomId remote) {
  CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/evtchn_ctl"));
  Charge(caller, costs_.hypercall, nullptr, "evtchn_alloc_unbound");
  EvtPort port = static_cast<EvtPort>(caller->ports_.size());
  caller->ports_.emplace_back();
  Domain::PortInfo& info = caller->ports_.back();
  info.allocated = true;
  info.unbound_for = remote;
  return port;
}

EvtPort Hypervisor::EventBindInterdomain(Domain* caller, DomId remote_dom,
                                         EvtPort remote_port) {
  CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/evtchn_ctl"));
  Charge(caller, costs_.hypercall, nullptr, "evtchn_bind_interdomain");
  Domain* remote = domain(remote_dom);
  Domain::PortInfo* rinfo = PortOf(remote, remote_port);
  if (rinfo == nullptr || rinfo->unbound_for != caller->id() ||
      rinfo->peer_port != kInvalidPort) {
    return kInvalidPort;
  }
  EvtPort port = static_cast<EvtPort>(caller->ports_.size());
  caller->ports_.emplace_back();
  Domain::PortInfo& info = caller->ports_.back();
  info.allocated = true;
  info.peer_dom = remote_dom;
  info.peer_port = remote_port;
  rinfo->peer_dom = caller->id();
  rinfo->peer_port = port;
  return port;
}

void Hypervisor::EventSetHandler(Domain* dom, EvtPort port, std::function<void()> fn) {
  Domain::PortInfo* info = PortOf(dom, port);
  KITE_CHECK(info != nullptr);
  info->handler = std::move(fn);
}

bool Hypervisor::EventSend(Domain* caller, EvtPort port, Vcpu* caller_vcpu) {
  Domain::PortInfo* info = PortOf(caller, port);
  if (info == nullptr || info->peer_port == kInvalidPort) {
    return false;
  }
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/evtchn_send"));
    Charge(caller, costs_.event_send, caller_vcpu, "evtchn_send");
  }
  events_sent_->Inc();
  Domain* peer = domain(info->peer_dom);
  if (peer == nullptr) {
    events_vanished_->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(caller->id(), FlightKind::kEventVanished, port);
    }
    return false;
  }
  Domain::PortInfo* pinfo = PortOf(peer, info->peer_port);
  if (pinfo == nullptr) {
    events_vanished_->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(caller->id(), FlightKind::kEventVanished, port);
    }
    return false;
  }
  if (pinfo->pending) {
    // Event coalescing: an undelivered event absorbs further sends.
    events_coalesced_->Inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant(caller->id(), 0, "evtchn", "evt_coalesced", executor_->Now(),
                       "port", port);
    }
    return true;
  }
  if (InjectFault(FaultSite::kEventNotify)) {
    // The hypercall "succeeded" but the interrupt is lost. Deliberately does
    // NOT set pending — that would absorb every later send and wedge the
    // port forever instead of modelling one lost notification.
    events_dropped_->Inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant(caller->id(), 0, "evtchn", "evt_dropped", executor_->Now(),
                       "port", port);
    }
    if (recorder_ != nullptr) {
      recorder_->Record(caller->id(), FlightKind::kEventDropped, port);
    }
    return true;
  }
  pinfo->pending = true;
  DomId peer_id = peer->id();
  EvtPort peer_port = info->peer_port;
  executor_->PostAfter(costs_.event_delivery, KITE_POST_SITE("hv/evtchn-notify"),
                       [this, peer_id, peer_port] {
    Domain* d = domain(peer_id);
    Domain::PortInfo* pi = PortOf(d, peer_port);
    if (pi == nullptr) {
      events_vanished_->Inc();
      if (recorder_ != nullptr) {
        recorder_->Record(peer_id, FlightKind::kEventVanished, peer_port);
      }
      return;  // Domain or port vanished in flight.
    }
    pi->pending = false;
    events_delivered_->Inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant(peer_id, 0, "evtchn", "evt_deliver", executor_->Now(), "port",
                       peer_port);
    }
    {
      // Scoped to the dispatch charge only: the handler body below sets its
      // own categories (netback/rx, blkfront/io, ...).
      CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/irq_dispatch"));
      d->vcpu(0)->Charge(costs_.irq_dispatch);
    }
    if (pi->handler) {
      pi->handler();
    }
  });
  return true;
}

void Hypervisor::EventClose(Domain* dom, EvtPort port) {
  Domain::PortInfo* info = PortOf(dom, port);
  if (info == nullptr) {
    return;
  }
  // Unlink the peer end.
  if (info->peer_port != kInvalidPort) {
    Domain* peer = domain(info->peer_dom);
    Domain::PortInfo* pinfo = PortOf(peer, info->peer_port);
    if (pinfo != nullptr) {
      pinfo->peer_dom = -1;
      pinfo->peer_port = kInvalidPort;
    }
  }
  info->allocated = false;
  info->handler = nullptr;
  info->pending = false;
  info->peer_port = kInvalidPort;
}

MappedGrant Hypervisor::GrantMap(Domain* mapper, DomId owner, GrantRef ref,
                                 bool write_access, Vcpu* caller_vcpu) {
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/grant_map"));
    Charge(mapper, costs_.grant_map, caller_vcpu, "gnttab_map");
  }
  grant_maps_->Inc();
  auto record_fail = [&] {
    grant_map_fails_->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(mapper->id(), FlightKind::kGrantMapFail, owner,
                        static_cast<uint64_t>(ref));
    }
  };
  if (InjectFault(FaultSite::kGrantMap)) {
    record_fail();
    return MappedGrant{};
  }
  Domain* owner_dom = domain(owner);
  if (owner_dom == nullptr) {
    record_fail();
    return MappedGrant{};
  }
  GrantTable::Entry* e = owner_dom->grant_table().Lookup(ref);
  if (e == nullptr || e->peer != mapper->id() || (write_access && e->readonly)) {
    record_fail();
    return MappedGrant{};
  }
  ++e->active_maps;
  if (recorder_ != nullptr) {
    recorder_->Record(mapper->id(), FlightKind::kGrantMap, owner,
                      static_cast<uint64_t>(ref));
  }
  Vcpu* mapper_vcpu = caller_vcpu != nullptr ? caller_vcpu : mapper->vcpu(0);
  SimDuration unmap_cost = costs_.grant_unmap;
  DomId mapper_id = mapper->id();
  auto on_unmap = [this, mapper_vcpu, mapper_id, owner, ref, unmap_cost] {
    grant_unmaps_->Inc();
    hypercalls_->Inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Complete(mapper_id, 0, "hypercall", "gnttab_unmap", executor_->Now(),
                        unmap_cost);
    }
    if (recorder_ != nullptr) {
      recorder_->Record(mapper_id, FlightKind::kGrantUnmap, owner,
                        static_cast<uint64_t>(ref));
    }
    CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/grant_unmap"));
    mapper_vcpu->Charge(unmap_cost);
  };
  return MappedGrant(&owner_dom->grant_table(), ref, e->page, on_unmap);
}

bool Hypervisor::GrantCopyToGranted(Domain* caller, DomId owner, GrantRef ref, size_t offset,
                                    std::span<const uint8_t> src, Vcpu* caller_vcpu) {
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/grant_copy"));
    Charge(caller,
           costs_.grant_copy_base +
               Nanos(static_cast<int64_t>(costs_.copy_ns_per_byte * src.size())),
           caller_vcpu, "gnttab_copy");
  }
  grant_copies_->Inc();
  // Bounds first (overflow-proof form), before any owner-page access: the
  // hypervisor is the last line of defense against malformed ring fields.
  if (offset > kPageSize || src.size() > kPageSize - offset) {
    grant_copy_rejects_->Inc();
    return false;
  }
  Domain* owner_dom = domain(owner);
  if (owner_dom == nullptr) {
    return false;
  }
  GrantTable::Entry* e = owner_dom->grant_table().Lookup(ref);
  if (e == nullptr || e->peer != caller->id() || e->readonly) {
    return false;
  }
  std::copy(src.begin(), src.end(), e->page->data.begin() + offset);
  grant_copy_bytes_->Add(src.size());
  return true;
}

bool Hypervisor::GrantCopyFromGranted(Domain* caller, DomId owner, GrantRef ref,
                                      size_t offset, std::span<uint8_t> dst,
                                      Vcpu* caller_vcpu) {
  {
    CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/grant_copy"));
    Charge(caller,
           costs_.grant_copy_base +
               Nanos(static_cast<int64_t>(costs_.copy_ns_per_byte * dst.size())),
           caller_vcpu, "gnttab_copy");
  }
  grant_copies_->Inc();
  if (offset > kPageSize || dst.size() > kPageSize - offset) {
    grant_copy_rejects_->Inc();
    return false;
  }
  Domain* owner_dom = domain(owner);
  if (owner_dom == nullptr) {
    return false;
  }
  GrantTable::Entry* e = owner_dom->grant_table().Lookup(ref);
  if (e == nullptr || e->peer != caller->id()) {
    return false;
  }
  std::copy_n(e->page->data.begin() + offset, dst.size(), dst.begin());
  grant_copy_bytes_->Add(dst.size());
  return true;
}

bool Hypervisor::AssignPci(PciDevice* device, Domain* owner, bool iommu) {
  if (device->owner_ != nullptr) {
    return false;
  }
  device->owner_ = owner;
  device->iommu_ = iommu;
  if (std::find(pci_devices_.begin(), pci_devices_.end(), device) == pci_devices_.end()) {
    pci_devices_.push_back(device);
  }
  device->OnAssigned(owner);
  return true;
}

void Hypervisor::UnassignPci(PciDevice* device) {
  if (device->owner_ == nullptr) {
    return;
  }
  device->owner_ = nullptr;
  device->irq_handler_ = nullptr;
  device->OnUnassigned();
}

void Hypervisor::DeliverPciIrq(PciDevice* device) {
  Domain* owner = device->owner_;
  if (owner == nullptr) {
    return;
  }
  DomId owner_id = owner->id();
  executor_->PostAfter(costs_.event_delivery, KITE_POST_SITE("hv/pci-irq"),
                       [this, device, owner_id] {
    Domain* d = domain(owner_id);
    if (d == nullptr || device->owner_ != d) {
      return;
    }
    {
      CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/irq_dispatch"));
      d->vcpu(0)->Charge(costs_.irq_dispatch);
    }
    events_delivered_->Inc();
    pci_irqs_delivered_->Inc();
    if (device->irq_handler_) {
      device->irq_handler_();
    }
  });
}

void Hypervisor::ChargeXenstoreOp(Domain* caller) {
  CpuScope cpu_scope(KITE_CPU_CATEGORY("hv/xenstore_op"));
  Charge(caller, costs_.xenstore_op, nullptr, "xenstore_op");
}

// --- PciDevice methods that need the hypervisor (defined here to keep pci.h
// free of the Hypervisor dependency). ---

void PciDevice::RaiseIrq() {
  if (owner_ != nullptr) {
    owner_->hypervisor()->DeliverPciIrq(this);
  }
}

bool PciDevice::DmaAllowed(const Domain* target) const {
  if (!iommu_) {
    return true;  // No IOMMU: nothing constrains device DMA.
  }
  return owner_ != nullptr && target == owner_;
}

}  // namespace kite
