// Grant tables: Xen's inter-domain shared-memory mechanism.
//
// A domain grants a peer access to one of its pages and hands the peer the
// grant reference (gref) out of band (via xenstore or a ring slot). The peer
// then either maps the page into its own address space (map/unmap — costly,
// which is why Kite's blkback keeps *persistent* mappings) or asks the
// hypervisor to copy bytes (grant copy — what modern netfront/netback use).
#ifndef SRC_HV_GRANT_TABLE_H_
#define SRC_HV_GRANT_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/hv/page.h"

namespace kite {

using DomId = int32_t;
using GrantRef = uint32_t;

inline constexpr GrantRef kInvalidGrantRef = 0xffffffffu;

// Per-domain table of grant entries. All cross-domain operations (map, copy)
// are mediated by the Hypervisor, which performs permission checks and cost
// accounting; the table itself only tracks entries.
class GrantTable {
 public:
  explicit GrantTable(DomId owner) : owner_(owner) {}
  ~GrantTable() { *alive_ = false; }
  GrantTable(const GrantTable&) = delete;
  GrantTable& operator=(const GrantTable&) = delete;

  // Grants `peer` access to `page`. Returns the new grant reference.
  GrantRef GrantAccess(DomId peer, PageRef page, bool readonly);

  // Revokes a grant. Fails (returns false) while the peer holds a mapping —
  // the Xen behaviour that makes unmap ordering a real protocol concern.
  bool EndAccess(GrantRef ref);

  // Accessors used by the hypervisor during map/copy.
  struct Entry {
    PageRef page;
    DomId peer = -1;
    bool readonly = false;
    bool in_use = false;
    int active_maps = 0;
  };
  Entry* Lookup(GrantRef ref);

  // Force-drops every active mapping held by `peer` (domain destruction: the
  // mapper is gone, so its mappings cannot be released gracefully). Entries
  // stay granted — the owner revokes them with EndAccess, which now succeeds.
  // Returns the number of mappings dropped. A stale MappedGrant unmapped
  // later is harmless: Unmap only decrements while active_maps > 0.
  int RevokeMappingsFor(DomId peer);

  DomId owner() const { return owner_; }
  int active_entry_count() const;
  int total_maps_outstanding() const;

  // Liveness token captured by MappedGrant handles: when the owning domain
  // (and with it this table) is destroyed while a backend still holds a
  // mapping, the handle's Unmap must not touch the freed table.
  std::shared_ptr<const bool> alive_token() const { return alive_; }

 private:
  DomId owner_;
  std::vector<Entry> entries_;
  std::vector<GrantRef> free_list_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// RAII handle for a mapped grant held by a peer domain. Move-only. The
// optional unmap hook lets the hypervisor charge the unmap hypercall cost to
// the mapping domain — the cost Kite's persistent grants exist to avoid.
class MappedGrant {
 public:
  MappedGrant() = default;
  MappedGrant(GrantTable* table, GrantRef ref, PageRef page,
              std::function<void()> on_unmap = nullptr)
      : table_(table),
        table_alive_(table != nullptr ? table->alive_token() : nullptr),
        ref_(ref),
        page_(std::move(page)),
        on_unmap_(std::move(on_unmap)) {}
  ~MappedGrant() { Unmap(); }

  MappedGrant(MappedGrant&& other) noexcept { *this = std::move(other); }
  MappedGrant& operator=(MappedGrant&& other) noexcept;
  MappedGrant(const MappedGrant&) = delete;
  MappedGrant& operator=(const MappedGrant&) = delete;

  bool valid() const { return page_ != nullptr; }
  Page* page() const { return page_.get(); }
  GrantRef ref() const { return ref_; }

  // Explicitly releases the mapping (also done by the destructor).
  void Unmap();

 private:
  GrantTable* table_ = nullptr;
  std::shared_ptr<const bool> table_alive_;
  GrantRef ref_ = kInvalidGrantRef;
  PageRef page_;
  std::function<void()> on_unmap_;
};

}  // namespace kite

#endif  // SRC_HV_GRANT_TABLE_H_
