// PCI passthrough device model.
//
// A PciDevice (NIC, NVMe controller) is assigned to exactly one domain —
// Dom0 or a driver domain — via PCI passthrough. With the IOMMU enabled
// (required by MLS OSs, paper §2.3), DMA initiated by the device is validated
// against the owning domain; violations are recorded as IOMMU faults instead
// of corrupting other domains.
#ifndef SRC_HV_PCI_H_
#define SRC_HV_PCI_H_

#include <functional>
#include <string>

#include "src/sim/time.h"

namespace kite {

class Domain;

class PciDevice {
 public:
  PciDevice(std::string bdf, std::string name)
      : bdf_(std::move(bdf)), name_(std::move(name)) {}
  virtual ~PciDevice() = default;

  PciDevice(const PciDevice&) = delete;
  PciDevice& operator=(const PciDevice&) = delete;

  const std::string& bdf() const { return bdf_; }
  const std::string& name() const { return name_; }

  Domain* owner() const { return owner_; }
  bool iommu_protected() const { return iommu_; }

  // Device driver (in the owning domain) registers its interrupt handler.
  void SetIrqHandler(std::function<void()> fn) { irq_handler_ = std::move(fn); }

  // Raises the device interrupt: delivered to the owner with IRQ latency and
  // dispatch cost (implemented in pci/domain glue in hypervisor.cc).
  void RaiseIrq();

  // DMA validation: returns true if the device may DMA into `target`'s
  // memory. With IOMMU this is owner-only; without, any domain (the unsafe
  // pre-IOMMU world the paper contrasts against).
  bool DmaAllowed(const Domain* target) const;

  int iommu_fault_count() const { return iommu_faults_; }
  void RecordIommuFault() { ++iommu_faults_; }

  // Called by the hypervisor on assignment; overridable for device bring-up.
  virtual void OnAssigned(Domain* owner) {}

  // Called by the hypervisor when the device is released (explicit unassign
  // or owner destruction) so the model can drop references into the old
  // owner — e.g. the vCPU that receive processing was charged to.
  virtual void OnUnassigned() {}

 private:
  friend class Hypervisor;

  std::string bdf_;
  std::string name_;
  Domain* owner_ = nullptr;
  bool iommu_ = true;
  std::function<void()> irq_handler_;
  int iommu_faults_ = 0;
};

}  // namespace kite

#endif  // SRC_HV_PCI_H_
