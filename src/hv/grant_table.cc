#include "src/hv/grant_table.h"

#include "src/base/log.h"

namespace kite {

GrantRef GrantTable::GrantAccess(DomId peer, PageRef page, bool readonly) {
  KITE_CHECK(page != nullptr);
  GrantRef ref;
  if (!free_list_.empty()) {
    ref = free_list_.back();
    free_list_.pop_back();
  } else {
    ref = static_cast<GrantRef>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[ref];
  e.page = std::move(page);
  e.peer = peer;
  e.readonly = readonly;
  e.in_use = true;
  e.active_maps = 0;
  return ref;
}

bool GrantTable::EndAccess(GrantRef ref) {
  Entry* e = Lookup(ref);
  if (e == nullptr) {
    return false;
  }
  if (e->active_maps > 0) {
    // Peer still holds a mapping; revocation must wait (matches Xen's
    // gnttab_end_foreign_access semantics for mapped grants).
    return false;
  }
  e->page.reset();
  e->in_use = false;
  e->peer = -1;
  free_list_.push_back(ref);
  return true;
}

GrantTable::Entry* GrantTable::Lookup(GrantRef ref) {
  if (ref >= entries_.size() || !entries_[ref].in_use) {
    return nullptr;
  }
  return &entries_[ref];
}

int GrantTable::RevokeMappingsFor(DomId peer) {
  int dropped = 0;
  for (Entry& e : entries_) {
    if (e.in_use && e.peer == peer && e.active_maps > 0) {
      dropped += e.active_maps;
      e.active_maps = 0;
    }
  }
  return dropped;
}

int GrantTable::active_entry_count() const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.in_use) {
      ++n;
    }
  }
  return n;
}

int GrantTable::total_maps_outstanding() const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.in_use) {
      n += e.active_maps;
    }
  }
  return n;
}

MappedGrant& MappedGrant::operator=(MappedGrant&& other) noexcept {
  if (this != &other) {
    Unmap();
    table_ = other.table_;
    table_alive_ = std::move(other.table_alive_);
    ref_ = other.ref_;
    page_ = std::move(other.page_);
    on_unmap_ = std::move(other.on_unmap_);
    other.table_ = nullptr;
    other.table_alive_.reset();
    other.ref_ = kInvalidGrantRef;
    other.page_.reset();
    other.on_unmap_ = nullptr;
  }
  return *this;
}

void MappedGrant::Unmap() {
  if (page_ == nullptr) {
    return;
  }
  // A stale handle whose mapping was already force-dropped (the mapper
  // domain was destroyed) has nothing to unmap: skip the hypercall hook —
  // it charges the mapper's vCPU, which no longer exists. The alive token
  // covers the reverse direction: the *owner* domain died and took the table
  // with it, leaving `table_` dangling.
  bool was_mapped = false;
  if (table_ != nullptr && table_alive_ != nullptr && *table_alive_) {
    GrantTable::Entry* e = table_->Lookup(ref_);
    if (e != nullptr && e->active_maps > 0) {
      --e->active_maps;
      was_mapped = true;
    }
  }
  if (was_mapped && on_unmap_ != nullptr) {
    on_unmap_();
  }
  on_unmap_ = nullptr;
  page_.reset();
  table_ = nullptr;
  ref_ = kInvalidGrantRef;
}

}  // namespace kite
