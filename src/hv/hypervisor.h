// The hypervisor: the only trusted component (paper §3.1).
//
// Provides domain lifecycle, event channels (virtual interrupts), grant
// map/copy operations with cost accounting, xenstore (run by the xenstored
// daemon, conceptually in Dom0), and PCI passthrough with IOMMU checks.
#ifndef SRC_HV_HYPERVISOR_H_
#define SRC_HV_HYPERVISOR_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault.h"
#include "src/hv/domain.h"
#include "src/hv/pci.h"
#include "src/hv/xenstore.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/sim/executor.h"

namespace kite {

// Hypercall and event cost parameters, calibrated to a Xeon E5-2695-class
// machine (paper Table 2). These costs are what make "hypercalls are
// expensive" true in simulation — the premise behind Kite's dedicated
// threads, persistent grants, and request batching.
struct HvCosts {
  SimDuration hypercall = Nanos(650);        // Bare VMEXIT/VMENTER round trip.
  SimDuration event_send = Nanos(700);       // EVTCHNOP_send from the caller.
  SimDuration event_delivery = Micros(1);    // Latency until the peer's handler runs.
  SimDuration irq_dispatch = Nanos(400);     // Charged to the receiving vCPU.
  SimDuration grant_map = Nanos(1100);       // Per-page map hypercall share.
  SimDuration grant_unmap = Nanos(1600);     // Unmap incl. TLB shootdown.
  SimDuration grant_copy_base = Nanos(350);  // Per-op fixed cost.
  double copy_ns_per_byte = 0.11;            // ~9 GB/s hypervisor-mediated copy.
  SimDuration xenstore_op = Micros(15);      // One xenstored round trip.
};

class Hypervisor {
 public:
  // `metrics` hosts the hypervisor's counters under ("hv", <device>, <name>);
  // when null (standalone hv tests) the hypervisor owns a private registry.
  // `tracer` is optional and may also be attached later via set_tracer.
  explicit Hypervisor(Executor* executor, HvCosts costs = HvCosts{},
                      MetricRegistry* metrics = nullptr, EventTracer* tracer = nullptr);
  ~Hypervisor();

  Executor* executor() const { return executor_; }
  const HvCosts& costs() const { return costs_; }
  XenStore& store() { return store_; }

  // The registry hosting hypervisor metrics; device drivers reach the
  // system-wide registry through this.
  MetricRegistry* metrics() const { return metrics_; }
  EventTracer* tracer() const { return tracer_; }
  void set_tracer(EventTracer* tracer) { tracer_ = tracer; }

  // Always-on flight recorder (optional wiring, like the tracer, but with no
  // enable flag: when present, domain lifecycle, grant map/unmap, dropped
  // events and xenbus switches are recorded unconditionally). The pointer is
  // mirrored into the xenstore so XenbusClient::SwitchState can record.
  FlightRecorder* recorder() const { return recorder_; }
  void set_recorder(FlightRecorder* recorder) {
    recorder_ = recorder;
    store_.set_recorder(recorder);
  }
  // Health watchdog handle: backend drivers register their per-instance
  // samplers through this (the hypervisor is the one object every driver
  // already holds).
  HealthMonitor* health() const { return health_; }
  void set_health(HealthMonitor* health) { health_ = health; }

  // --- CPU attribution (DESIGN.md §16). ---
  // When on, every vCPU of every domain (existing and future) carries a
  // (category → ns) ledger; hypercall paths in this class credit their own
  // categories (hv/grant_copy, hv/evtchn_send, hv/irq_dispatch, ...).
  // Accounting-only: enabling never changes any Charge timing.
  void set_cpu_attribution(bool on);
  bool cpu_attribution() const { return cpu_attribution_; }

  // --- Domains. ---
  // Dom0 is created by the constructor with id 0.
  Domain* dom0() { return domains_[0].get(); }
  Domain* CreateDomain(const std::string& name, int vcpus, int memory_mb);
  Domain* domain(DomId id);
  // Destroys a domain: revokes event channels and PCI assignments. Used by
  // the driver-domain restart scenario.
  void DestroyDomain(DomId id);
  int live_domain_count() const;

  // --- Event channels. ---
  EvtPort EventAllocUnbound(Domain* caller, DomId remote);
  EvtPort EventBindInterdomain(Domain* caller, DomId remote_dom, EvtPort remote_port);
  void EventSetHandler(Domain* dom, EvtPort port, std::function<void()> fn);
  // Sends an event through the caller's port. Pending events coalesce: a
  // second send before delivery does not produce a second interrupt.
  // caller_vcpu: the vCPU executing the hypercall (defaults to vCPU 0).
  bool EventSend(Domain* caller, EvtPort port, Vcpu* caller_vcpu = nullptr);
  void EventClose(Domain* dom, EvtPort port);

  // --- Grant operations (the mapper/copier is charged). ---
  MappedGrant GrantMap(Domain* mapper, DomId owner, GrantRef ref, bool write_access,
                       Vcpu* caller_vcpu = nullptr);
  bool GrantCopyToGranted(Domain* caller, DomId owner, GrantRef ref, size_t offset,
                          std::span<const uint8_t> src, Vcpu* caller_vcpu = nullptr);
  bool GrantCopyFromGranted(Domain* caller, DomId owner, GrantRef ref, size_t offset,
                            std::span<uint8_t> dst, Vcpu* caller_vcpu = nullptr);

  // --- PCI passthrough. ---
  bool AssignPci(PciDevice* device, Domain* owner, bool iommu = true);
  void UnassignPci(PciDevice* device);
  // Delivers a device interrupt to the device's owner.
  void DeliverPciIrq(PciDevice* device);

  // --- Charged xenstore access (used by Domain wrappers). ---
  void ChargeXenstoreOp(Domain* caller);

  // --- Fault injection. ---
  // Optional; when set, grant maps, event sends and domain xenstore reads
  // consult the injector. XenbusClient state reads bypass Domain wrappers on
  // purpose and stay reliable — the reconnect protocol needs a ground truth.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }
  bool InjectFault(FaultSite site) {
    return faults_ != nullptr && faults_->ShouldFail(site);
  }

  // --- Introspection for tests/benches (registry-backed). ---
  uint64_t hypercalls_issued() const { return hypercalls_->value(); }
  uint64_t events_sent() const { return events_sent_->value(); }
  uint64_t events_delivered() const { return events_delivered_->value(); }
  uint64_t grant_maps() const { return grant_maps_->value(); }
  uint64_t grant_unmaps() const { return grant_unmaps_->value(); }
  uint64_t grant_copies() const { return grant_copies_->value(); }
  uint64_t grant_copy_bytes() const { return grant_copy_bytes_->value(); }
  // Grant copies refused because offset/size fell outside the granted page
  // (the hypervisor is the last line of defense against malformed rings).
  uint64_t grant_copy_rejects() const { return grant_copy_rejects_->value(); }
  // Event notifications accepted but dropped by fault injection.
  uint64_t events_dropped() const { return events_dropped_->value(); }
  // Mappings force-dropped because the mapping domain was destroyed.
  uint64_t forced_grant_revocations() const { return forced_grant_revocations_->value(); }
  // GrantMap hypercalls that returned an invalid mapping (injected fault,
  // dead owner, bogus ref, or permission failure). Together with unmaps,
  // forced revocations, and live tables' outstanding maps these make the
  // grant ledger exact: maps == fails + unmaps + forced + outstanding.
  uint64_t grant_map_fails() const { return grant_map_fails_->value(); }
  // Sends absorbed by an already-pending port (no second interrupt).
  uint64_t events_coalesced() const { return events_coalesced_->value(); }
  // Sends accepted but never delivered: the peer was gone at send time, or
  // the port/domain vanished while the delivery was in flight.
  uint64_t events_vanished() const { return events_vanished_->value(); }
  // PCI device interrupts delivered (counted inside events_delivered too, so
  // the ledger reads: delivered == sent - dropped - coalesced - vanished
  // + pci_irq_delivered once the queue is quiet).
  uint64_t pci_irqs_delivered() const { return pci_irqs_delivered_->value(); }
  // Allocated event-channel ports of one domain (leak accounting in tests).
  int open_port_count(DomId id) const;
  // Ids of domains currently alive (Dom0 included).
  std::vector<DomId> live_domains() const;
  // (port, peer domain) for every interdomain-bound port of `id` — the
  // invariant checker verifies every peer is still alive.
  std::vector<std::pair<EvtPort, DomId>> BoundPorts(DomId id) const;

 private:
  void Charge(Domain* dom, SimDuration cost, Vcpu* caller_vcpu, const char* op);
  Domain::PortInfo* PortOf(Domain* dom, EvtPort port);

  Executor* executor_;
  HvCosts costs_;
  XenStore store_;
  bool cpu_attribution_ = false;
  FaultInjector* faults_ = nullptr;
  // Falls back to an owned registry when the caller does not supply one, so
  // counter handles below are always valid.
  std::unique_ptr<MetricRegistry> owned_metrics_;
  MetricRegistry* metrics_ = nullptr;
  EventTracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  HealthMonitor* health_ = nullptr;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<PciDevice*> pci_devices_;

  Counter* hypercalls_;
  Counter* events_sent_;
  Counter* events_delivered_;
  Counter* events_dropped_;
  Counter* grant_maps_;
  Counter* grant_unmaps_;
  Counter* grant_copies_;
  Counter* grant_copy_bytes_;
  Counter* grant_copy_rejects_;
  Counter* forced_grant_revocations_;
  Counter* grant_map_fails_;
  Counter* events_coalesced_;
  Counter* events_vanished_;
  Counter* pci_irqs_delivered_;
};

}  // namespace kite

#endif  // SRC_HV_HYPERVISOR_H_
