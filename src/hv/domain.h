// A virtual machine (Xen domain): Dom0, a driver domain, or a guest DomU.
//
// Domains own their vCPUs, grant table, and event-channel port table, and
// provide cost-charged convenience wrappers for xenstore access (every
// xenstore operation from a domain is a round trip through xenstored and is
// charged accordingly).
#ifndef SRC_HV_DOMAIN_H_
#define SRC_HV_DOMAIN_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/hv/grant_table.h"
#include "src/hv/xenstore.h"
#include "src/sim/cpu.h"

namespace kite {

class Hypervisor;

using EvtPort = int32_t;
inline constexpr EvtPort kInvalidPort = -1;

class Domain {
 public:
  Domain(Hypervisor* hv, DomId id, std::string name, int vcpus, int memory_mb);

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  DomId id() const { return id_; }
  const std::string& name() const { return name_; }
  int memory_mb() const { return memory_mb_; }
  Hypervisor* hypervisor() const { return hv_; }

  int vcpu_count() const { return static_cast<int>(vcpus_.size()); }
  Vcpu* vcpu(int i = 0) { return vcpus_[i].get(); }

  GrantTable& grant_table() { return grant_table_; }

  // --- Cost-charged xenstore wrappers. ---
  bool StoreWrite(const std::string& path, const std::string& value);
  bool StoreWriteInt(const std::string& path, int64_t value);
  std::optional<std::string> StoreRead(const std::string& path);
  std::optional<int64_t> StoreReadInt(const std::string& path);
  std::optional<std::vector<std::string>> StoreList(const std::string& path);
  bool StoreRemove(const std::string& path);
  WatchId StoreWatch(const std::string& prefix, const std::string& token, WatchFn fn);

  // Home directory in xenstore: /local/domain/<id>.
  std::string store_home() const;

  // Whether the domain has finished booting (set by the boot simulation in
  // src/core; I/O backends refuse to connect before this).
  bool online() const { return online_; }
  void set_online(bool v) { online_ = v; }

 private:
  friend class Hypervisor;

  struct PortInfo {
    bool allocated = false;
    DomId peer_dom = -1;
    EvtPort peer_port = kInvalidPort;
    DomId unbound_for = -1;  // Set while awaiting interdomain bind.
    bool pending = false;
    std::function<void()> handler;
  };

  Hypervisor* hv_;
  DomId id_;
  std::string name_;
  int memory_mb_;
  bool online_ = false;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  GrantTable grant_table_;
  std::vector<PortInfo> ports_;
};

}  // namespace kite

#endif  // SRC_HV_DOMAIN_H_
