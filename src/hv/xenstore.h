// XenStore: the hierarchical key-value database shared between domains,
// maintained by the xenstored daemon in Dom0.
//
// Backend and frontend drivers exchange configuration (ring grant refs,
// event-channel ports, feature flags) through xenstore paths, and register
// *watches* that fire when a path (or any descendant) changes — the mechanism
// Kite's backend-invocation thread (paper §4.1) is built on.
//
// Semantics implemented:
//  - hierarchical nodes, each with a value, an owner domain, and a read ACL;
//  - writes create intermediate nodes; removes are recursive;
//  - watches match a path prefix and fire asynchronously (posted to the
//    executor with a xenstored processing latency), including once
//    immediately upon registration (real Xen behaviour that drivers rely on
//    to discover pre-existing state).
#ifndef SRC_HV_XENSTORE_H_
#define SRC_HV_XENSTORE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/hv/grant_table.h"  // for DomId
#include "src/sim/executor.h"

namespace kite {

class FlightRecorder;

inline constexpr DomId kDom0 = 0;

using WatchId = uint64_t;

// Callback invoked with the changed path and the registration token.
using WatchFn = std::function<void(const std::string& path, const std::string& token)>;

class XenStore {
 public:
  explicit XenStore(Executor* executor) : executor_(executor) {}

  // --- Data operations (caller identity is checked against node ACLs). ---

  // Writes value at path, creating intermediate nodes owned by the caller.
  // Returns false on permission failure.
  bool Write(DomId caller, const std::string& path, const std::string& value);

  std::optional<std::string> Read(DomId caller, const std::string& path) const;

  // Child names of path (not full paths), or nullopt if missing/forbidden.
  std::optional<std::vector<std::string>> List(DomId caller, const std::string& path) const;

  // Recursive removal. Returns false if missing or forbidden. Fires watches
  // only for the removed path itself.
  bool Remove(DomId caller, const std::string& path);

  // Recursive removal that fires watches for *every* removed descendant path,
  // not just the subtree root. Domain teardown uses this so that a frontend
  // watching ".../state" under the dead domain's directory observes the
  // deletion (plain Remove would only notify watchers of the directory root).
  bool RemoveSubtree(DomId caller, const std::string& path);

  bool Exists(const std::string& path) const;

  // Makes a node (and future children created under it) readable/writable by
  // `peer` — models xenstore permissions for the frontend/backend split.
  bool SetPermission(DomId caller, const std::string& path, DomId peer);

  // Convenience typed accessors used throughout the drivers.
  bool WriteInt(DomId caller, const std::string& path, int64_t value);
  std::optional<int64_t> ReadInt(DomId caller, const std::string& path) const;

  // --- Watches. ---

  // Registers a watch on `prefix`. Fires asynchronously once immediately
  // (with the prefix itself) and then on every write/remove at or under the
  // prefix (with the changed path).
  WatchId AddWatch(DomId caller, const std::string& prefix, const std::string& token,
                   WatchFn fn);
  void RemoveWatch(WatchId id);

  // Drops every watch registered by `owner`; returns how many were removed.
  // Called from domain teardown so a destroyed domain's driver callbacks can
  // never fire into freed objects.
  int RemoveWatchesOwnedBy(DomId owner);

  // Latency of one xenstored round trip (charged as event delivery delay on
  // watch callbacks; data ops are synchronous in simulation but cost-charged
  // by the Hypervisor wrapper).
  void set_op_latency(SimDuration d) { op_latency_ = d; }
  SimDuration op_latency() const { return op_latency_; }

  int watch_count() const { return static_cast<int>(watches_.size()); }
  int watch_count(DomId owner) const;

  // Flight recorder passthrough (set by Hypervisor::set_recorder): lets
  // XenbusClient record device state switches without depending on hv wiring.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* recorder() const { return recorder_; }

 private:
  struct Node {
    std::string value;
    DomId owner = kDom0;
    std::set<DomId> permitted;  // Domains besides owner/dom0 with access.
    std::map<std::string, Node> children;
  };

  const Node* FindNode(const std::string& path) const;
  Node* FindNode(const std::string& path);
  bool CanRead(DomId caller, const Node& node) const;
  bool CanWrite(DomId caller, const Node& node) const;
  void FireWatches(const std::string& path);
  void PostWatchEvent(WatchId id, const std::string& path);
  static void CollectPaths(const Node& node, const std::string& base,
                           std::vector<std::string>* out);

  struct Watch {
    WatchId id;
    DomId owner;
    std::string prefix;
    std::string token;
    WatchFn fn;
  };

  Executor* executor_;
  FlightRecorder* recorder_ = nullptr;
  Node root_;
  std::vector<Watch> watches_;
  WatchId next_watch_id_ = 1;
  SimDuration op_latency_ = Micros(15);
};

}  // namespace kite

#endif  // SRC_HV_XENSTORE_H_
