// Xen shared I/O ring protocol (public/io/ring.h re-implemented faithfully).
//
// A ring has `size` slots (power of two). Indices are free-running uint32
// counters; slot = index & (size-1). The frontend produces requests at
// req_prod, the backend produces responses at rsp_prod; each side keeps a
// private producer/consumer. req_event/rsp_event implement notification
// avoidance: a producer only notifies when the consumer asked to be told
// about the range just pushed (RING_PUSH_*_AND_CHECK_NOTIFY), and a consumer
// re-arms with RING_FINAL_CHECK_FOR_* before sleeping.
//
// Requests and responses share slots in real Xen; we keep two typed arrays
// indexed by the same counters, which is protocol-equivalent (a response for
// request i reuses logical slot i) while staying type-safe.
#ifndef SRC_HV_RING_H_
#define SRC_HV_RING_H_

#include <cstdint>
#include <vector>

#include "src/base/log.h"

namespace kite {

// Shared state: conceptually lives in the granted ring page.
template <typename Req, typename Rsp>
struct SharedRing {
  explicit SharedRing(uint32_t size)
      : size(size), req_slots(size), rsp_slots(size), req_stamp_ns(size) {
    KITE_CHECK(size != 0 && (size & (size - 1)) == 0) << "ring size must be a power of two";
  }

  uint32_t size;
  // Shared producer indices and event thresholds (free-running).
  uint32_t req_prod = 0;
  uint32_t rsp_prod = 0;
  uint32_t req_event = 1;
  uint32_t rsp_event = 1;
  std::vector<Req> req_slots;
  std::vector<Rsp> rsp_slots;
  // Simulation metadata, not guest-visible wire state: the simulated time at
  // which each request slot was produced, read back by the backend at
  // ConsumeRequest to measure ring queueing delay. Costs nothing on the
  // simulated timeline.
  std::vector<int64_t> req_stamp_ns;

  uint32_t Mask(uint32_t idx) const { return idx & (size - 1); }
};

// Frontend view: produces requests, consumes responses.
template <typename Req, typename Rsp>
class FrontRing {
 public:
  explicit FrontRing(SharedRing<Req, Rsp>* shared) : shared_(shared) {}

  uint32_t size() const { return shared_->size; }

  // Unconsumed responses published by the backend.
  uint32_t UnconsumedResponses() const { return shared_->rsp_prod - rsp_cons_; }
  // Free request slots: a slot is reusable once its response was consumed.
  bool Full() const { return req_prod_pvt_ - rsp_cons_ >= shared_->size; }
  uint32_t FreeRequests() const { return shared_->size - (req_prod_pvt_ - rsp_cons_); }

  // Stages a request in the next private slot. Caller must check !Full().
  // `stamp_ns` is observability metadata (submit time) carried beside the
  // slot; frontends that don't trace pass the default 0.
  void ProduceRequest(const Req& req, int64_t stamp_ns = 0) {
    KITE_CHECK(!Full());
    shared_->req_slots[shared_->Mask(req_prod_pvt_)] = req;
    shared_->req_stamp_ns[shared_->Mask(req_prod_pvt_)] = stamp_ns;
    ++req_prod_pvt_;
  }

  // Publishes staged requests; returns true if the backend must be notified.
  bool PushRequests() {
    const uint32_t old = shared_->req_prod;
    const uint32_t next = req_prod_pvt_;
    shared_->req_prod = next;
    // Notify iff the backend's req_event falls inside (old, next].
    return (next - shared_->req_event) < (next - old);
  }

  bool HasUnconsumedResponses() const { return UnconsumedResponses() != 0; }

  Rsp ConsumeResponse() {
    KITE_CHECK(HasUnconsumedResponses());
    Rsp r = shared_->rsp_slots[shared_->Mask(rsp_cons_)];
    ++rsp_cons_;
    return r;
  }

  // Re-arms the response event and reports whether more responses raced in
  // (RING_FINAL_CHECK_FOR_RESPONSES). Call before sleeping.
  bool FinalCheckForResponses() {
    if (HasUnconsumedResponses()) {
      return true;
    }
    shared_->rsp_event = rsp_cons_ + 1;
    return HasUnconsumedResponses();
  }

  uint32_t req_prod_pvt() const { return req_prod_pvt_; }
  uint32_t rsp_cons() const { return rsp_cons_; }

 private:
  SharedRing<Req, Rsp>* shared_;
  uint32_t req_prod_pvt_ = 0;
  uint32_t rsp_cons_ = 0;
};

// Backend view: consumes requests, produces responses.
template <typename Req, typename Rsp>
class BackRing {
 public:
  explicit BackRing(SharedRing<Req, Rsp>* shared) : shared_(shared) {}

  uint32_t size() const { return shared_->size; }

  uint32_t UnconsumedRequests() const { return shared_->req_prod - req_cons_; }
  bool HasUnconsumedRequests() const { return UnconsumedRequests() != 0; }

  Req ConsumeRequest() {
    KITE_CHECK(HasUnconsumedRequests());
    Req r = shared_->req_slots[shared_->Mask(req_cons_)];
    last_consumed_index_ = req_cons_;
    last_consumed_stamp_ns_ = shared_->req_stamp_ns[shared_->Mask(req_cons_)];
    ++req_cons_;
    return r;
  }

  // Re-arms the request event; call before sleeping.
  bool FinalCheckForRequests() {
    if (HasUnconsumedRequests()) {
      return true;
    }
    shared_->req_event = req_cons_ + 1;
    return HasUnconsumedRequests();
  }

  // A response may only be produced for a consumed request.
  void ProduceResponse(const Rsp& rsp) {
    KITE_CHECK(rsp_prod_pvt_ - shared_->rsp_prod < shared_->size);
    KITE_CHECK(static_cast<int32_t>(req_cons_ - rsp_prod_pvt_) > 0)
        << "response would overtake request consumption";
    shared_->rsp_slots[shared_->Mask(rsp_prod_pvt_)] = rsp;
    ++rsp_prod_pvt_;
  }

  // Publishes staged responses; returns true if the frontend must be
  // notified.
  bool PushResponses() {
    const uint32_t old = shared_->rsp_prod;
    const uint32_t next = rsp_prod_pvt_;
    shared_->rsp_prod = next;
    return (next - shared_->rsp_event) < (next - old);
  }

  uint32_t rsp_prod_pvt() const { return rsp_prod_pvt_; }
  uint32_t req_cons() const { return req_cons_; }
  // Responses staged but not yet published to the frontend (quiescence
  // accounting: a quiet backend has pushed everything it produced).
  uint32_t unpushed_responses() const { return rsp_prod_pvt_ - shared_->rsp_prod; }

  // Observability: the free-running index and submit stamp of the request
  // most recently returned by ConsumeRequest (the index doubles as the flow
  // id's ring-slot-generation component).
  uint32_t last_consumed_index() const { return last_consumed_index_; }
  int64_t last_consumed_stamp_ns() const { return last_consumed_stamp_ns_; }

 private:
  SharedRing<Req, Rsp>* shared_;
  uint32_t rsp_prod_pvt_ = 0;
  uint32_t req_cons_ = 0;
  uint32_t last_consumed_index_ = 0;
  int64_t last_consumed_stamp_ns_ = 0;
};

}  // namespace kite

#endif  // SRC_HV_RING_H_
