#include "src/hv/xenstore.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace kite {

const XenStore::Node* XenStore::FindNode(const std::string& path) const {
  const Node* node = &root_;
  for (const auto& part : SplitPath(path)) {
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = &it->second;
  }
  return node;
}

XenStore::Node* XenStore::FindNode(const std::string& path) {
  return const_cast<Node*>(static_cast<const XenStore*>(this)->FindNode(path));
}

bool XenStore::CanRead(DomId caller, const Node& node) const {
  return caller == kDom0 || caller == node.owner || node.permitted.count(caller) != 0;
}

bool XenStore::CanWrite(DomId caller, const Node& node) const {
  return caller == kDom0 || caller == node.owner || node.permitted.count(caller) != 0;
}

bool XenStore::Write(DomId caller, const std::string& path, const std::string& value) {
  Node* node = &root_;
  for (const auto& part : SplitPath(path)) {
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      if (!CanWrite(caller, *node)) {
        return false;
      }
      Node child;
      child.owner = caller;
      // Inherit explicit permissions so a frontend can populate its own
      // subtree after dom0 grants it the parent directory.
      child.permitted = node->permitted;
      it = node->children.emplace(part, std::move(child)).first;
    }
    node = &it->second;
  }
  if (!CanWrite(caller, *node)) {
    return false;
  }
  node->value = value;
  FireWatches(path);
  return true;
}

std::optional<std::string> XenStore::Read(DomId caller, const std::string& path) const {
  const Node* node = FindNode(path);
  if (node == nullptr || !CanRead(caller, *node)) {
    return std::nullopt;
  }
  return node->value;
}

std::optional<std::vector<std::string>> XenStore::List(DomId caller,
                                                       const std::string& path) const {
  const Node* node = FindNode(path);
  if (node == nullptr || !CanRead(caller, *node)) {
    return std::nullopt;
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

bool XenStore::Remove(DomId caller, const std::string& path) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return false;  // Refuse to remove the root.
  }
  Node* parent = &root_;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    auto it = parent->children.find(parts[i]);
    if (it == parent->children.end()) {
      return false;
    }
    parent = &it->second;
  }
  auto it = parent->children.find(parts.back());
  if (it == parent->children.end() || !CanWrite(caller, it->second)) {
    return false;
  }
  parent->children.erase(it);
  FireWatches(path);
  return true;
}

void XenStore::CollectPaths(const Node& node, const std::string& base,
                            std::vector<std::string>* out) {
  out->push_back(base);
  for (const auto& [name, child] : node.children) {
    CollectPaths(child, base + "/" + name, out);
  }
}

bool XenStore::RemoveSubtree(DomId caller, const std::string& path) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return false;  // Refuse to remove the root.
  }
  Node* parent = &root_;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    auto it = parent->children.find(parts[i]);
    if (it == parent->children.end()) {
      return false;
    }
    parent = &it->second;
  }
  auto it = parent->children.find(parts.back());
  if (it == parent->children.end() || !CanWrite(caller, it->second)) {
    return false;
  }
  std::vector<std::string> removed;
  CollectPaths(it->second, path, &removed);
  parent->children.erase(it);
  // Deepest-first (reverse preorder) so leaf watchers hear before directory
  // watchers, matching the order a sequence of single removes would produce.
  for (auto rit = removed.rbegin(); rit != removed.rend(); ++rit) {
    FireWatches(*rit);
  }
  return true;
}

bool XenStore::Exists(const std::string& path) const { return FindNode(path) != nullptr; }

bool XenStore::SetPermission(DomId caller, const std::string& path, DomId peer) {
  Node* node = FindNode(path);
  if (node == nullptr || (caller != kDom0 && caller != node->owner)) {
    return false;
  }
  node->permitted.insert(peer);
  // Also grant recursively to existing children (simplification of Xen's
  // per-node perms: drivers set perms on the device directory root).
  std::vector<Node*> stack{node};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    n->permitted.insert(peer);
    for (auto& [name, child] : n->children) {
      stack.push_back(&child);
    }
  }
  return true;
}

bool XenStore::WriteInt(DomId caller, const std::string& path, int64_t value) {
  return Write(caller, path, StrFormat("%lld", static_cast<long long>(value)));
}

std::optional<int64_t> XenStore::ReadInt(DomId caller, const std::string& path) const {
  auto v = Read(caller, path);
  if (!v.has_value()) {
    return std::nullopt;
  }
  int64_t parsed = ParseDecimal(*v);
  if (parsed < 0) {
    return std::nullopt;
  }
  return parsed;
}

WatchId XenStore::AddWatch(DomId caller, const std::string& prefix, const std::string& token,
                           WatchFn fn) {
  KITE_CHECK(fn != nullptr);
  WatchId id = next_watch_id_++;
  watches_.push_back(Watch{id, caller, prefix, token, std::move(fn)});
  // Xen fires a watch once on registration so the watcher can discover
  // pre-existing state.
  PostWatchEvent(id, prefix);
  return id;
}

void XenStore::PostWatchEvent(WatchId id, const std::string& path) {
  // The callback is resolved at *fire* time: a watch removed while the event
  // was in flight (e.g. its owner was destroyed) silently expires.
  executor_->PostAfter(op_latency_, KITE_POST_SITE("xenstore/watch-fire"),
                       [this, id, path] {
    for (const Watch& w : watches_) {
      if (w.id == id) {
        w.fn(path, w.token);
        return;
      }
    }
  });
}

void XenStore::RemoveWatch(WatchId id) {
  for (auto it = watches_.begin(); it != watches_.end(); ++it) {
    if (it->id == id) {
      watches_.erase(it);
      return;
    }
  }
}

int XenStore::RemoveWatchesOwnedBy(DomId owner) {
  int removed = 0;
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->owner == owner) {
      it = watches_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

int XenStore::watch_count(DomId owner) const {
  int n = 0;
  for (const Watch& w : watches_) {
    if (w.owner == owner) {
      ++n;
    }
  }
  return n;
}

void XenStore::FireWatches(const std::string& path) {
  for (const Watch& w : watches_) {
    if (PathIsUnder(path, w.prefix)) {
      PostWatchEvent(w.id, path);
    }
  }
}

}  // namespace kite
