// Machine pages shared between domains through the grant table.
#ifndef SRC_HV_PAGE_H_
#define SRC_HV_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

namespace kite {

inline constexpr size_t kPageSize = 4096;

// One 4 KiB machine page. Pages are reference-counted: a domain that grants a
// page keeps it alive while a peer holds a mapping.
//
// `object` carries a typed view of structured shared state living in the
// page (e.g. a SharedRing): the granting side attaches it, the mapping side
// retrieves it after GrantMap — the simulation analogue of both sides
// casting the mapped page to the ring struct type.
struct Page {
  std::array<uint8_t, kPageSize> data{};
  std::shared_ptr<void> object;

  std::span<uint8_t> bytes() { return std::span<uint8_t>(data); }
  std::span<const uint8_t> bytes() const { return std::span<const uint8_t>(data); }

  template <typename T>
  T* As() const {
    return static_cast<T*>(object.get());
  }
};

using PageRef = std::shared_ptr<Page>;

inline PageRef AllocPage() { return std::make_shared<Page>(); }

}  // namespace kite

#endif  // SRC_HV_PAGE_H_
