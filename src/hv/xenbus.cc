#include "src/hv/xenbus.h"

#include "src/base/strings.h"
#include "src/obs/recorder.h"

namespace kite {

const char* XenbusStateName(XenbusState state) {
  switch (state) {
    case XenbusState::kUnknown:
      return "Unknown";
    case XenbusState::kInitialising:
      return "Initialising";
    case XenbusState::kInitWait:
      return "InitWait";
    case XenbusState::kInitialised:
      return "Initialised";
    case XenbusState::kConnected:
      return "Connected";
    case XenbusState::kClosing:
      return "Closing";
    case XenbusState::kClosed:
      return "Closed";
  }
  return "?";
}

std::string DomainPath(DomId dom) { return StrFormat("/local/domain/%d", dom); }

std::string BackendPath(DomId backend_dom, const std::string& type, DomId frontend_dom,
                        int devid) {
  return StrFormat("/local/domain/%d/backend/%s/%d/%d", backend_dom, type.c_str(),
                   frontend_dom, devid);
}

std::string FrontendPath(DomId frontend_dom, const std::string& type, int devid) {
  return StrFormat("/local/domain/%d/device/%s/%d", frontend_dom, type.c_str(), devid);
}

bool XenbusClient::SwitchState(const std::string& device_path, XenbusState state) {
  const bool ok =
      store_->WriteInt(caller_, device_path + "/state", static_cast<int>(state));
  if (ok && store_->recorder() != nullptr) {
    store_->recorder()->Record(caller_, FlightKind::kXenbusSwitch, 0,
                               static_cast<uint64_t>(static_cast<int>(state)));
  }
  return ok;
}

XenbusState XenbusClient::ReadState(const std::string& device_path) const {
  auto v = store_->ReadInt(caller_, device_path + "/state");
  if (!v.has_value() || *v < 0 || *v > 6) {
    return XenbusState::kUnknown;
  }
  return static_cast<XenbusState>(*v);
}

}  // namespace kite
