#include "src/hv/domain.h"

#include "src/base/strings.h"
#include "src/hv/hypervisor.h"

namespace kite {

Domain::Domain(Hypervisor* hv, DomId id, std::string name, int vcpus, int memory_mb)
    : hv_(hv), id_(id), name_(std::move(name)), memory_mb_(memory_mb), grant_table_(id) {
  for (int i = 0; i < vcpus; ++i) {
    vcpus_.push_back(std::make_unique<Vcpu>(hv->executor()));
    if (hv->cpu_attribution()) {
      vcpus_.back()->EnableAttribution();
    }
  }
}

bool Domain::StoreWrite(const std::string& path, const std::string& value) {
  hv_->ChargeXenstoreOp(this);
  return hv_->store().Write(id_, path, value);
}

bool Domain::StoreWriteInt(const std::string& path, int64_t value) {
  hv_->ChargeXenstoreOp(this);
  return hv_->store().WriteInt(id_, path, value);
}

std::optional<std::string> Domain::StoreRead(const std::string& path) {
  hv_->ChargeXenstoreOp(this);
  if (hv_->InjectFault(FaultSite::kXenstoreRead)) {
    return std::nullopt;
  }
  return hv_->store().Read(id_, path);
}

std::optional<int64_t> Domain::StoreReadInt(const std::string& path) {
  hv_->ChargeXenstoreOp(this);
  if (hv_->InjectFault(FaultSite::kXenstoreRead)) {
    return std::nullopt;
  }
  return hv_->store().ReadInt(id_, path);
}

std::optional<std::vector<std::string>> Domain::StoreList(const std::string& path) {
  hv_->ChargeXenstoreOp(this);
  if (hv_->InjectFault(FaultSite::kXenstoreRead)) {
    return std::nullopt;
  }
  return hv_->store().List(id_, path);
}

bool Domain::StoreRemove(const std::string& path) {
  hv_->ChargeXenstoreOp(this);
  return hv_->store().Remove(id_, path);
}

WatchId Domain::StoreWatch(const std::string& prefix, const std::string& token, WatchFn fn) {
  hv_->ChargeXenstoreOp(this);
  return hv_->store().AddWatch(id_, prefix, token, std::move(fn));
}

std::string Domain::store_home() const { return StrFormat("/local/domain/%d", id_); }

}  // namespace kite
